package sprite

// Crash/recovery and fault-race coverage: node crashes killing residents,
// the location service and migration refusing down nodes, and the three
// races between a migration in flight and a failing endpoint (source
// crash, target crash, both down). See docs/FAULTS.md.

import (
	"testing"

	"papyrus/internal/obs"
)

func TestCrashKillsResidentProcesses(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustCluster(t, Config{Nodes: 2, Metrics: reg})
	a := c.Spawn(Spec{Name: "a", Work: 100, Home: 0})
	b := c.Spawn(Spec{Name: "b", Work: 100, Home: 0})
	c.Crash(0)
	for i := 0; i < 2; i++ {
		done, ok := c.AwaitCompletion()
		if !ok {
			t.Fatal("missing crash completion")
		}
		if !done.Killed || !done.Crashed {
			t.Errorf("completion %+v, want Killed+Crashed", done)
		}
	}
	if a.State() != StateKilled || b.State() != StateKilled {
		t.Errorf("states %v/%v, want killed", a.State(), b.State())
	}
	if got := reg.Counter("sprite.node.crash"); got != 1 {
		t.Errorf("sprite.node.crash = %d, want 1", got)
	}
	if got := reg.Counter("sprite.proc.crashkill"); got != 2 {
		t.Errorf("sprite.proc.crashkill = %d, want 2", got)
	}
}

func TestCrashCompletionsInPIDOrder(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1})
	var pids []PID
	for i := 0; i < 4; i++ {
		pids = append(pids, c.Spawn(Spec{Name: "p", Work: 100, Home: 0}).PID)
	}
	c.Crash(0)
	for _, want := range pids {
		done, ok := c.AwaitCompletion()
		if !ok || done.PID != want {
			t.Fatalf("completion %+v, want pid %d (PID order)", done, want)
		}
	}
}

func TestDownNodeInvisibleToPlacement(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2})
	c.Crash(1)
	if c.NodeByID(1).Idle() {
		t.Error("down node reports idle")
	}
	if !c.NodeByID(1).Down() {
		t.Error("crashed node does not report Down")
	}
	if id, ok := c.FindIdleHost(-1); !ok || id != 0 {
		t.Errorf("FindIdleHost = %d,%v, want node 0 (node 1 down)", id, ok)
	}
	p := c.Spawn(Spec{Name: "t", Work: 100, Home: 0, Migratable: true})
	if p.Node() != 0 {
		t.Errorf("process placed on %d, want 0", p.Node())
	}
	if err := c.Migrate(p.PID, 1); err == nil {
		t.Error("Migrate to a down node should fail")
	}
}

func TestSpawnOntoDownHomeDies(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1})
	c.Crash(0)
	p := c.Spawn(Spec{Name: "doomed", Work: 100, Home: 0})
	if p.State() != StateKilled {
		t.Fatalf("state %v, want killed (home down, nowhere to run)", p.State())
	}
	done, ok := c.AwaitCompletion()
	if !ok || !done.Crashed {
		t.Fatalf("completion %+v, want Crashed", done)
	}
}

func TestRecoverRejoinsIdlePool(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustCluster(t, Config{Nodes: 1, Metrics: reg})
	c.Crash(0)
	if _, ok := c.FindIdleHost(-1); ok {
		t.Fatal("no idle host expected with the only node down")
	}
	c.Recover(0)
	if id, ok := c.FindIdleHost(-1); !ok || id != 0 {
		t.Fatalf("recovered node not idle again")
	}
	c.Spawn(Spec{Name: "t", Work: 50, Home: 0})
	done, ok := c.AwaitCompletion()
	if !ok || done.Killed {
		t.Fatalf("completion %+v after recovery", done)
	}
	if got := reg.Counter("sprite.node.recover"); got != 1 {
		t.Errorf("sprite.node.recover = %d, want 1", got)
	}
	// Crash and recover are idempotent; out-of-range IDs (a fault plan may
	// name nodes this cluster doesn't have) are ignored.
	c.Recover(0)
	c.Crash(99)
	c.Recover(99)
	c.Crash(-1)
}

func TestScheduledCrashAndRecover(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1})
	c.ScheduleCrash(0, 30)
	c.ScheduleRecover(0, 60)
	p := c.Spawn(Spec{Name: "victim", Work: 100, Home: 0})
	done, ok := c.AwaitCompletion()
	if !ok || !done.Crashed || done.At != 30 {
		t.Fatalf("completion %+v, want crash kill at t=30", done)
	}
	_ = p
	// Drain through the recovery event, then the node accepts work again.
	c.Drain()
	if c.NodeByID(0).Down() {
		t.Fatal("node still down after scheduled recovery")
	}
	if c.Now() != 60 {
		t.Errorf("now = %d, want 60 (recovery event time)", c.Now())
	}
}

// TestKillRacesMigrationInFlight: a deliberate Kill of a process in
// StateMigrating must drop its in-transit reservation on the target so
// later placements see the true load.
func TestKillRacesMigrationInFlight(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, MigrationDelay: 5})
	p := c.Spawn(Spec{Name: "mover", Work: 100, Home: 0})
	if err := c.Migrate(p.PID, 1); err != nil {
		t.Fatal(err)
	}
	if p.State() != StateMigrating {
		t.Fatalf("state %v, want migrating", p.State())
	}
	if c.NodeByID(1).Load() != 1 {
		t.Fatalf("target load %d, want 1 (in transit)", c.NodeByID(1).Load())
	}
	if err := c.Kill(p.PID); err != nil {
		t.Fatal(err)
	}
	if c.NodeByID(1).Load() != 0 {
		t.Errorf("target load %d after kill, want 0", c.NodeByID(1).Load())
	}
	done, ok := c.AwaitCompletion()
	if !ok || !done.Killed || done.Crashed {
		t.Fatalf("completion %+v, want deliberate (non-crash) kill", done)
	}
}

// TestSourceCrashLeavesMigrationUnharmed: the satellite scenario — the
// source node crashes while a process is in StateMigrating away from it.
// The traveler is no longer resident there, so it must arrive and finish.
func TestSourceCrashLeavesMigrationUnharmed(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, MigrationDelay: 10})
	resident := c.Spawn(Spec{Name: "resident", Work: 1000, Home: 0})
	p := c.Spawn(Spec{Name: "mover", Work: 100, Home: 0})
	if err := c.Migrate(p.PID, 1); err != nil {
		t.Fatal(err)
	}
	c.Crash(0) // source node goes down mid-transit
	done, ok := c.AwaitCompletion()
	if !ok || done.PID != resident.PID || !done.Crashed {
		t.Fatalf("first completion %+v, want crash kill of resident", done)
	}
	done, ok = c.AwaitCompletion()
	if !ok || done.PID != p.PID {
		t.Fatalf("second completion %+v, want mover", done)
	}
	if done.Killed || done.At != 110 {
		t.Errorf("mover completion %+v, want clean finish at t=110 (10 transit + 100 work)", done)
	}
}

// TestTargetCrashBouncesMigrationHome: the target crashes while the
// process is in transit; on arrival it is bounced back to its (healthy)
// home node rather than lost.
func TestTargetCrashBouncesMigrationHome(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, MigrationDelay: 10})
	p := c.Spawn(Spec{Name: "mover", Work: 100, Home: 0})
	if err := c.Migrate(p.PID, 1); err != nil {
		t.Fatal(err)
	}
	c.ScheduleCrash(1, 5) // before the t=10 arrival
	done, ok := c.AwaitCompletion()
	if !ok {
		t.Fatal("no completion")
	}
	if done.Killed {
		t.Fatalf("completion %+v, want survival via bounce home", done)
	}
	// t=10 arrival at the dead node, 10 more ticks home, 100 work.
	if done.At != 120 {
		t.Errorf("finished at %d, want 120", done.At)
	}
	if p.Migrations() != 2 {
		t.Errorf("migrations = %d, want 2 (out + bounce)", p.Migrations())
	}
	if p.Node() != 0 {
		t.Errorf("final node %d, want home 0", p.Node())
	}
}

// TestBothEndpointsDownKillsTraveler: target and home both down on
// arrival — the process is lost to the crash and reported for retry.
func TestBothEndpointsDownKillsTraveler(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, MigrationDelay: 10})
	p := c.Spawn(Spec{Name: "mover", Work: 100, Home: 0})
	if err := c.Migrate(p.PID, 1); err != nil {
		t.Fatal(err)
	}
	c.ScheduleCrash(0, 5)
	c.ScheduleCrash(1, 5)
	done, ok := c.AwaitCompletion()
	if !ok || !done.Crashed || done.PID != p.PID {
		t.Fatalf("completion %+v, want crash kill of the traveler", done)
	}
	if done.At != 10 {
		t.Errorf("killed at %d, want 10 (arrival time)", done.At)
	}
}

func TestAfterFiresOnceAndCancels(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1})
	fired := 0
	c.After(5, func(now int64) {
		fired++
		if now != 5 {
			t.Errorf("After fired at %d, want 5", now)
		}
	})
	canceled := 0
	cancel := c.After(3, func(now int64) { canceled++ })
	cancel()
	c.Spawn(Spec{Name: "t", Work: 100, Home: 0})
	c.Drain()
	if fired != 1 {
		t.Errorf("After fired %d times, want exactly 1", fired)
	}
	if canceled != 0 {
		t.Errorf("canceled After still fired %d times", canceled)
	}
}

func TestMigrationStallHook(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, MigrationDelay: 2})
	var calls int
	c.SetStall(func(name string, pid, nth int) int64 {
		calls++
		return 25
	})
	p := c.Spawn(Spec{Name: "mover", Work: 100, Home: 0})
	if err := c.Migrate(p.PID, 1); err != nil {
		t.Fatal(err)
	}
	done, ok := c.AwaitCompletion()
	if !ok {
		t.Fatal("no completion")
	}
	// 2 base + 25 stall transit, then 100 work.
	if done.At != 127 {
		t.Errorf("stalled migration finished at %d, want 127", done.At)
	}
	if calls != 1 {
		t.Errorf("stall hook called %d times, want 1", calls)
	}
}
