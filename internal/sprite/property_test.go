package sprite

import (
	"testing"
	"testing/quick"
)

// TestMakespanEqualsBalancedLoad: k identical unit jobs on n ownerless
// nodes finish with makespan ceil(k/n)*work when placement balances —
// the processor-sharing model conserves work exactly.
func TestMakespanEqualsBalancedLoad(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%12) + 1
		n := int(nRaw%6) + 1
		const work = 60
		c, err := NewCluster(Config{Nodes: n})
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			c.Spawn(Spec{Name: "j", Work: work, Home: 0, Migratable: true})
		}
		done := c.Drain()
		if len(done) != k {
			return false
		}
		var makespan int64
		for _, d := range done {
			if d.At > makespan {
				makespan = d.At
			}
		}
		// Work conservation lower bound: total work / total capacity.
		minimum := int64((k*work + n - 1) / n)
		if makespan < minimum {
			return false
		}
		// Balanced greedy placement is within one job slot of optimal
		// for identical jobs: at most ceil(k/n)*work.
		perNode := (k + n - 1) / n
		return makespan <= int64(perNode*work)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWorkConservation: the sum over nodes of busy time equals the total
// work executed (no work is lost or duplicated by migrations without
// delay).
func TestWorkConservation(t *testing.T) {
	f := func(jobs []uint8) bool {
		if len(jobs) == 0 || len(jobs) > 10 {
			return true
		}
		c, err := NewCluster(Config{Nodes: 3})
		if err != nil {
			return false
		}
		total := 0
		for _, j := range jobs {
			w := int(j%50) + 1
			total += w
			c.Spawn(Spec{Name: "j", Work: float64(w), Home: 0, Migratable: true})
		}
		c.Drain()
		var busy int64
		for i := 0; i < c.NodeCount(); i++ {
			n := c.NodeByID(NodeID(i))
			busy += n.busyTime
		}
		// Integer rounding of completion events can charge at most one
		// extra tick per job.
		return busy >= int64(total) && busy <= int64(total+len(jobs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoForeignProcessOnOwnedNode: at every completion, no process with a
// different home is running on a node whose owner is active.
func TestNoForeignProcessOnOwnedNode(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 3, MigrationDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.ScheduleOwnerActivity(1, 25, 80)
	c.ScheduleOwnerActivity(2, 10, 60)
	for i := 0; i < 6; i++ {
		c.Spawn(Spec{Name: "j", Work: float64(30 + 10*i), Home: 0, Migratable: true})
	}
	for {
		_, ok := c.AwaitCompletion()
		if !ok {
			break
		}
		for i := 0; i < c.NodeCount(); i++ {
			n := c.NodeByID(NodeID(i))
			if !n.ownerActive {
				continue
			}
			for _, p := range n.running {
				if p.Home != n.ID {
					t.Fatalf("foreign process %d running on owned node %d at t=%d", p.PID, n.ID, c.Now())
				}
			}
		}
	}
}

// TestPCBTableConsistent: the process table lists exactly the live
// processes.
func TestPCBTableConsistent(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 2})
	a := c.Spawn(Spec{Name: "a", Work: 100, Home: 0})
	bproc := c.Spawn(Spec{Name: "b", Work: 200, Home: 0, Migratable: true})
	rows := c.ProcessTable()
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	c.AwaitCompletion() // a finishes first
	rows = c.ProcessTable()
	if len(rows) != 1 || rows[0].PID != bproc.PID {
		t.Fatalf("rows after completion: %+v", rows)
	}
	_ = a
}
