package sprite

import (
	"testing"

	"papyrus/internal/obs"
)

// TestAwaitBatchGroupsSameInstant: processes finishing at the same virtual
// instant come back as one batch, in event order; a later finisher starts
// the next batch.
func TestAwaitBatchGroupsSameInstant(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 4})
	// Three equal processes on three idle nodes finish together at t=100;
	// the long one on the fourth node finishes alone at t=300.
	a := c.Spawn(Spec{Name: "a", Work: 100, Home: 0, Migratable: true})
	b := c.Spawn(Spec{Name: "b", Work: 100, Home: 1, Migratable: true})
	d := c.Spawn(Spec{Name: "d", Work: 100, Home: 2, Migratable: true})
	long := c.Spawn(Spec{Name: "long", Work: 300, Home: 3, Migratable: true})

	batch, ok := c.AwaitBatch()
	if !ok {
		t.Fatal("no first batch")
	}
	if len(batch) != 3 {
		t.Fatalf("first batch has %d completions, want 3: %+v", len(batch), batch)
	}
	want := []PID{a.PID, b.PID, d.PID}
	for i, comp := range batch {
		if comp.At != 100 {
			t.Errorf("batch[%d] at t=%d, want 100", i, comp.At)
		}
		if comp.PID != want[i] {
			t.Errorf("batch[%d] pid %d, want %d (event order)", i, comp.PID, want[i])
		}
	}

	batch, ok = c.AwaitBatch()
	if !ok {
		t.Fatal("no second batch")
	}
	if len(batch) != 1 || batch[0].PID != long.PID || batch[0].At != 300 {
		t.Fatalf("second batch %+v, want just %d at t=300", batch, long.PID)
	}

	if _, ok := c.AwaitBatch(); ok {
		t.Error("batch from a drained cluster")
	}
}

// TestAwaitBatchDeterministicOrder: the same spawn sequence yields the
// same batch order on every run (rescheduleNode pushes in PID order, so
// simultaneous completions can't be shuffled by map iteration).
func TestAwaitBatchDeterministicOrder(t *testing.T) {
	order := func() []PID {
		c := mustCluster(t, Config{Nodes: 2})
		// Six processes share two nodes; sharing makes several finish at
		// the same instant after the first wave frees capacity.
		for i := 0; i < 6; i++ {
			c.Spawn(Spec{Name: "p", Work: 100, Home: NodeID(i % 2), Migratable: true})
		}
		var pids []PID
		for {
			batch, ok := c.AwaitBatch()
			if !ok {
				return pids
			}
			pids = append(pids, PID(-1)) // batch boundary marker
			for _, comp := range batch {
				pids = append(pids, comp.PID)
			}
		}
	}
	first := order()
	for run := 0; run < 10; run++ {
		got := order()
		if len(got) != len(first) {
			t.Fatalf("run %d: %v vs %v", run, got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d: batch order diverged: %v vs %v", run, got, first)
			}
		}
	}
}

// TestRequeuePrepends: requeued completions come back first, in the given
// order, ahead of completions that were already pending.
func TestRequeuePrepends(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 3})
	c.Spawn(Spec{Name: "a", Work: 100, Home: 0, Migratable: true})
	c.Spawn(Spec{Name: "b", Work: 100, Home: 1, Migratable: true})
	c.Spawn(Spec{Name: "d", Work: 100, Home: 2, Migratable: true})
	batch, ok := c.AwaitBatch()
	if !ok || len(batch) != 3 {
		t.Fatalf("batch %+v, want 3 completions", batch)
	}
	// Apply the first, requeue the unapplied tail, as the task manager
	// does when a restart stops a batch early.
	c.Requeue(batch[1:])
	c.Requeue(nil) // no-op
	again, ok := c.AwaitBatch()
	if !ok || len(again) != 2 {
		t.Fatalf("requeued batch %+v, want 2 completions", again)
	}
	if again[0].PID != batch[1].PID || again[1].PID != batch[2].PID {
		t.Errorf("requeued order %+v, want %+v", again, batch[1:])
	}
}

// TestProcessLookupAndStates covers the PCB-style accessors the task
// manager's batch apply uses for history records.
func TestProcessLookupAndStates(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1})
	p := c.Spawn(Spec{Name: "a", Work: 100, Home: 0})
	got, ok := c.Process(p.PID)
	if !ok || got != p {
		t.Fatalf("Process(%d) = %v, %v", p.PID, got, ok)
	}
	if _, ok := c.Process(p.PID + 999); ok {
		t.Error("lookup of unknown pid succeeded")
	}
	if s := p.State().String(); s != "running" {
		t.Errorf("state %q, want running", s)
	}
	if _, ok := c.AwaitBatch(); !ok {
		t.Fatal("no completion")
	}
	if s := p.State().String(); s != "done" {
		t.Errorf("state %q, want done", s)
	}
	if at := p.FinishedAt(); at != 100 {
		t.Errorf("FinishedAt %d, want 100", at)
	}
}

// TestObserveUtilization: the sampled histogram lands in the registry
// (and the call is a no-op without one).
func TestObserveUtilization(t *testing.T) {
	bare := mustCluster(t, Config{Nodes: 1})
	bare.Spawn(Spec{Name: "a", Work: 100, Home: 0})
	bare.Drain()
	bare.ObserveUtilization() // must not panic without a registry

	reg := obs.NewRegistry()
	c := mustCluster(t, Config{Nodes: 2, Metrics: reg})
	c.Spawn(Spec{Name: "a", Work: 100, Home: 0})
	c.Drain()
	c.ObserveUtilization()
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["sprite.node.utilization"]; !ok || h.Count != 2 {
		t.Fatalf("sprite.node.utilization histogram %+v ok=%v, want 2 samples", h, ok)
	}
}

// TestAwaitBatchStopsAtNonCompletionEvent: a scheduled cluster event at
// the batch instant ends the batch, so its handler observes the same
// state it would under one-at-a-time stepping.
func TestAwaitBatchStopsAtNonCompletionEvent(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2})
	c.Spawn(Spec{Name: "a", Work: 100, Home: 0, Migratable: true})
	c.Spawn(Spec{Name: "b", Work: 100, Home: 1, Migratable: true})
	// An owner returns to node 1 at the completion instant: the batch must
	// not absorb past it blindly. Whichever side of the tick each
	// completion lands on, every completion must still be delivered.
	c.ScheduleOwnerActivity(1, 100, 200)
	seen := 0
	for {
		batch, ok := c.AwaitBatch()
		if !ok {
			break
		}
		seen += len(batch)
	}
	if seen != 2 {
		t.Errorf("saw %d completions, want 2", seen)
	}
}
