// Package sprite simulates the Sprite network operating system that the
// Papyrus prototype ran on (dissertation §4.3.2–§4.3.3). The real Sprite
// provided kernel-level process migration, idle-workstation location, and
// eviction when a workstation's owner returned; Papyrus layered re-migration
// on top by polling the process control blocks (Proc_GetPCBInfo).
//
// This package reproduces those services as a deterministic discrete-event
// simulation over virtual time:
//
//   - a Cluster of workstations, each with a relative CPU speed and an
//     optional interactive owner whose presence makes the node non-idle;
//   - processes with a fixed amount of work, executed under processor
//     sharing (a node running k processes advances each at speed/k);
//   - migration with a configurable transfer delay, eviction of foreign
//     processes when an owner returns, and a process table that the task
//     manager polls to re-migrate stranded migratable processes;
//   - a global event queue: completions, owner arrivals/departures and
//     periodic callbacks all execute in virtual-time order, so experiment
//     results (Fig 4.2/4.3 speedup curves, the re-migration bench) are
//     exactly reproducible.
//
// Like Sprite's network-wide file system, data location is transparent:
// processes read and write the shared oct.Store regardless of node.
// Every concurrent session — including every papyrusd wire session —
// owns a private Cluster, so virtual time never leaks across designers.
package sprite

import (
	"container/heap"
	"fmt"
	"sort"

	"papyrus/internal/obs"
)

// PID identifies a simulated process.
type PID int

// NodeID identifies a workstation.
type NodeID int

// ProcState enumerates the lifecycle of a simulated process.
type ProcState int

// Process lifecycle states.
const (
	StateRunning   ProcState = iota // progressing on some node
	StateMigrating                  // in transit between nodes
	StateDone                       // completed its work
	StateKilled                     // terminated by Kill
)

func (s ProcState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateMigrating:
		return "migrating"
	case StateDone:
		return "done"
	case StateKilled:
		return "killed"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Node is one simulated workstation.
type Node struct {
	ID    NodeID
	Name  string
	Speed float64 // relative CPU speed; 1.0 is the baseline

	ownerActive bool
	hasOwner    bool
	down        bool // crashed and not yet recovered
	running     map[PID]*Process
	incoming    int   // processes in transit toward this node
	lastUpdate  int64 // virtual time of last progress accounting

	busyTime int64 // accumulated virtual time with >=1 process running
}

// Idle reports Sprite's idleness criterion: a node is idle when its owner
// has not touched mouse or keyboard (is inactive). Nodes without owners
// (compute servers) are always idle. A crashed node is never idle — the
// location service must not place work on it.
func (n *Node) Idle() bool { return !n.ownerActive && !n.down }

// Down reports whether the node is crashed (fault injection, §4.3.3's
// recovery scenarios). Down nodes run nothing and accept no migrations.
func (n *Node) Down() bool { return n.down }

// Load returns the number of processes executing on or in transit toward
// the node, so placement decisions account for migrations still in flight.
func (n *Node) Load() int { return len(n.running) + n.incoming }

// Process is one simulated process (a CAD tool invocation).
type Process struct {
	PID        PID
	Name       string
	Work       float64 // total work units (1 unit = 1 tick on a speed-1 node)
	Parent     PID
	Home       NodeID
	Migratable bool
	Priority   int
	Tag        any // opaque payload for the task manager

	node       NodeID // current node (meaningful when running)
	state      ProcState
	remaining  float64
	gen        int // invalidates stale completion events
	migrations int
	evictions  int
	startedAt  int64
	finishedAt int64
}

// State returns the process lifecycle state.
func (p *Process) State() ProcState { return p.state }

// NodeID returns the node the process currently occupies.
func (p *Process) Node() NodeID { return p.node }

// Migrations returns how many times the process moved between nodes.
func (p *Process) Migrations() int { return p.migrations }

// Evictions returns how many times the process was evicted by a returning
// owner.
func (p *Process) Evictions() int { return p.evictions }

// FinishedAt returns the virtual completion time (valid once done).
func (p *Process) FinishedAt() int64 { return p.finishedAt }

// Completion reports a finished process to the cluster's waiters.
type Completion struct {
	PID    PID
	Name   string
	At     int64
	Killed bool
	// Crashed distinguishes a node-crash kill from a deliberate Kill, so
	// the task manager can retry the former without retrying the latter.
	Crashed bool
	Tag     any
}

// Config parameterizes a Cluster.
type Config struct {
	// Nodes is the number of workstations (>= 1).
	Nodes int
	// MigrationDelay is the virtual-time cost of moving a process
	// between nodes; the process makes no progress in transit.
	MigrationDelay int64
	// Speeds optionally gives per-node relative speeds; unset nodes get 1.0.
	Speeds []float64
	// Metrics and Tracer are optional observability sinks (nil = off);
	// see docs/OBSERVABILITY.md for the emitted counters and events.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Stall optionally returns extra in-transit ticks for a migration
	// (fault injection; see internal/fault and docs/FAULTS.md). Called
	// with the process name, its PID, and its migration ordinal; nil or
	// a non-positive return leaves the transfer at MigrationDelay.
	Stall func(name string, pid, nth int) int64
}

// Cluster is the simulated network of workstations. It is single-threaded:
// the owning task manager drives it by alternating Spawn/Kill calls with
// AwaitCompletion, exactly as the real task manager alternated fork/exec
// with waiting for SIGCHLD.
type Cluster struct {
	cfg     Config
	nodes   []*Node
	procs   map[PID]*Process
	nextPID PID
	now     int64
	events  eventQueue
	seq     int

	completions []Completion
	tickers     []*ticker
}

type ticker struct {
	interval int64
	fn       func(now int64)
	stopped  bool
	oneshot  bool // After timers fire once and stop
}

type eventKind int

const (
	evCompletion eventKind = iota
	evOwnerChange
	evMigrationArrive
	evTick
	evCrash
	evRecover
)

type event struct {
	at   int64
	seq  int // FIFO tie-break
	kind eventKind

	pid  PID
	gen  int
	node NodeID
	act  bool // owner becomes active?
	tkr  *ticker
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewCluster builds a cluster per the configuration.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("sprite: cluster needs at least one node, got %d", cfg.Nodes)
	}
	c := &Cluster{cfg: cfg, procs: make(map[PID]*Process)}
	cfg.Metrics.SetBuckets("sprite.node.utilization", []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 0; i < cfg.Nodes; i++ {
		speed := 1.0
		if i < len(cfg.Speeds) && cfg.Speeds[i] > 0 {
			speed = cfg.Speeds[i]
		}
		c.nodes = append(c.nodes, &Node{
			ID:      NodeID(i),
			Name:    fmt.Sprintf("ws%d", i),
			Speed:   speed,
			running: make(map[PID]*Process),
		})
	}
	return c, nil
}

// Now returns the current virtual time.
func (c *Cluster) Now() int64 { return c.now }

// NodeCount returns the number of workstations.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// NodeByID returns a node.
func (c *Cluster) NodeByID(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

func (c *Cluster) push(e *event) {
	c.seq++
	e.seq = c.seq
	heap.Push(&c.events, e)
}

// SetOwner declares that node has an interactive owner; owned nodes can
// become non-idle and evict foreign processes.
func (c *Cluster) SetOwner(id NodeID) {
	c.nodes[id].hasOwner = true
}

// ScheduleOwnerActivity schedules the node's owner to become active at
// `from` and inactive again at `until`, triggering eviction/idleness
// transitions at those virtual times.
func (c *Cluster) ScheduleOwnerActivity(id NodeID, from, until int64) {
	c.nodes[id].hasOwner = true
	c.push(&event{at: from, kind: evOwnerChange, node: id, act: true})
	c.push(&event{at: until, kind: evOwnerChange, node: id, act: false})
}

// Every registers fn to run at each multiple of interval in virtual time
// (the task manager's re-migration poll). The returned stop function
// cancels future invocations.
func (c *Cluster) Every(interval int64, fn func(now int64)) (stop func()) {
	if interval <= 0 {
		interval = 1
	}
	t := &ticker{interval: interval, fn: fn}
	c.tickers = append(c.tickers, t)
	c.push(&event{at: c.now + interval, kind: evTick, tkr: t})
	return func() { t.stopped = true }
}

// After registers fn to run once at now+delay in virtual time (the task
// manager's retry backoff). The returned cancel function stops it if it
// has not yet fired.
func (c *Cluster) After(delay int64, fn func(now int64)) (cancel func()) {
	if delay <= 0 {
		delay = 1
	}
	t := &ticker{interval: delay, fn: fn, oneshot: true}
	c.push(&event{at: c.now + delay, kind: evTick, tkr: t})
	return func() { t.stopped = true }
}

// SetStall installs a migration-stall hook (see Config.Stall). The fault
// injector arms it after construction; a nil fn removes it.
func (c *Cluster) SetStall(fn func(name string, pid, nth int) int64) {
	c.cfg.Stall = fn
}

// ScheduleCrash schedules a node crash at virtual time `at`: the node
// goes down and every resident process is killed with a Crashed
// completion (the task manager's retry policy re-issues those steps).
func (c *Cluster) ScheduleCrash(id NodeID, at int64) {
	c.push(&event{at: at, kind: evCrash, node: id})
}

// ScheduleRecover schedules a crashed node's recovery at virtual time
// `at`; a recovered node is idle again and accepts placements.
func (c *Cluster) ScheduleRecover(id NodeID, at int64) {
	c.push(&event{at: at, kind: evRecover, node: id})
}

// Crash takes the node down immediately (see ScheduleCrash).
func (c *Cluster) Crash(id NodeID) { c.crashNode(id) }

// Recover brings a crashed node back immediately.
func (c *Cluster) Recover(id NodeID) { c.recoverNode(id) }

// FindIdleHost implements Sprite's idle-node location service: it returns
// the idle node with the lowest load (excluding `exclude`), preferring
// faster nodes on ties. ok is false when no idle node exists — in that case
// the task manager runs the step on the home node (§4.3.3).
func (c *Cluster) FindIdleHost(exclude NodeID) (NodeID, bool) {
	best := -1
	for _, n := range c.nodes {
		if n.ID == exclude || !n.Idle() {
			continue
		}
		if best < 0 {
			best = int(n.ID)
			continue
		}
		b := c.nodes[best]
		if n.Load() < b.Load() || (n.Load() == b.Load() && n.Speed > b.Speed) {
			best = int(n.ID)
		}
	}
	if best < 0 {
		return 0, false
	}
	return NodeID(best), true
}

// Spec describes a process to spawn.
type Spec struct {
	Name       string
	Work       float64
	Parent     PID
	Home       NodeID
	Migratable bool
	Priority   int
	Tag        any
}

// Spawn creates a process. Migratable processes are placed on an idle node
// when one exists; otherwise (or when non-migratable) they run at home.
func (c *Cluster) Spawn(spec Spec) *Process {
	c.nextPID++
	p := &Process{
		PID:        c.nextPID,
		Name:       spec.Name,
		Work:       spec.Work,
		Parent:     spec.Parent,
		Home:       spec.Home,
		Migratable: spec.Migratable,
		Priority:   spec.Priority,
		Tag:        spec.Tag,
		remaining:  spec.Work,
		startedAt:  c.now,
		state:      StateRunning,
	}
	if p.Work <= 0 {
		p.remaining = 0
	}
	c.procs[p.PID] = p
	target := spec.Home
	if spec.Migratable {
		if id, ok := c.FindIdleHost(-1); ok {
			target = id
		}
	}
	c.cfg.Metrics.Inc("sprite.proc.spawn")
	if c.nodes[target].down {
		// Nowhere to run: the home node is down and no idle host exists.
		// The process dies on arrival, exactly as a fork onto a crashed
		// workstation would; the retry policy may re-issue it later.
		c.killCrashed(p, target)
		return p
	}
	if target != spec.Home {
		p.migrations++
		c.startMigration(p, target, "place")
	} else {
		c.placeOn(p, target)
	}
	return p
}

// killCrashed terminates a process lost to a node crash and reports a
// Crashed completion so waiters can distinguish it from a deliberate Kill.
func (c *Cluster) killCrashed(p *Process, node NodeID) {
	p.state = StateKilled
	p.gen++
	p.node = node
	p.finishedAt = c.now
	c.cfg.Metrics.Inc("sprite.proc.crashkill")
	c.completions = append(c.completions, Completion{PID: p.PID, Name: p.Name, At: c.now, Killed: true, Crashed: true, Tag: p.Tag})
}

// Kill terminates a running or migrating process.
func (c *Cluster) Kill(pid PID) error {
	p, ok := c.procs[pid]
	if !ok {
		return fmt.Errorf("sprite: no process %d", pid)
	}
	switch p.state {
	case StateDone, StateKilled:
		return nil
	case StateRunning:
		c.removeFrom(p, p.node)
	case StateMigrating:
		c.nodes[p.node].incoming--
	}
	p.state = StateKilled
	p.gen++ // invalidate pending events
	p.finishedAt = c.now
	c.cfg.Metrics.Inc("sprite.proc.kill")
	c.completions = append(c.completions, Completion{PID: p.PID, Name: p.Name, At: c.now, Killed: true, Tag: p.Tag})
	return nil
}

// Process returns the process with the given pid, if any.
func (c *Cluster) Process(pid PID) (*Process, bool) {
	p, ok := c.procs[pid]
	return p, ok
}

// PCBInfo is one row of the simulated process table, the analogue of
// Sprite's Proc_GetPCBInfo result that Papyrus polls for re-migration.
type PCBInfo struct {
	PID        PID
	Parent     PID
	Name       string
	Node       NodeID
	Home       NodeID
	Migratable bool
	State      ProcState
	Priority   int
}

// ProcessTable returns PCB rows for all live processes, sorted by PID.
func (c *Cluster) ProcessTable() []PCBInfo {
	var rows []PCBInfo
	for _, p := range c.procs {
		if p.state != StateRunning && p.state != StateMigrating {
			continue
		}
		rows = append(rows, PCBInfo{
			PID: p.PID, Parent: p.Parent, Name: p.Name, Node: p.node,
			Home: p.Home, Migratable: p.Migratable, State: p.state,
			Priority: p.Priority,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].PID < rows[j].PID })
	return rows
}

// Migrate moves a running process to the target node (re-migration). It
// fails if the process is not running or the target equals its current node.
func (c *Cluster) Migrate(pid PID, target NodeID) error {
	p, ok := c.procs[pid]
	if !ok {
		return fmt.Errorf("sprite: no process %d", pid)
	}
	if p.state != StateRunning {
		return fmt.Errorf("sprite: process %d is %s, not running", pid, p.state)
	}
	if p.node == target {
		return fmt.Errorf("sprite: process %d already on node %d", pid, target)
	}
	if c.nodes[target].down {
		return fmt.Errorf("sprite: node %d is down", target)
	}
	c.removeFrom(p, p.node)
	p.migrations++
	c.cfg.Metrics.Inc("sprite.proc.remigrate")
	c.startMigration(p, target, "remigrate")
	return nil
}

// --- event processing -------------------------------------------------

// AwaitCompletion advances virtual time until some process completes (or
// has already completed unreported) and returns it. ok is false when the
// event queue drains with nothing running — a deadlock in the caller.
func (c *Cluster) AwaitCompletion() (Completion, bool) {
	for {
		if len(c.completions) > 0 {
			done := c.completions[0]
			c.completions = c.completions[1:]
			return done, true
		}
		if !c.step() {
			return Completion{}, false
		}
	}
}

// AwaitBatch advances virtual time until at least one process completes,
// then also absorbs every further completion scheduled for that same
// virtual instant, returning the whole batch in event order. The parallel
// task manager executes a batch's tool bodies concurrently and applies
// their results sequentially in this order, which is what keeps stats and
// trace exports byte-identical at any worker count: the batch boundary —
// hence the apply order — is a pure function of the event queue, never of
// goroutine scheduling. Non-completion events (ticks, owner changes,
// crashes) end a batch, so their handlers still observe the same
// intermediate states they would under one-at-a-time stepping. ok is
// false when the event queue drains with nothing running.
func (c *Cluster) AwaitBatch() ([]Completion, bool) {
	for len(c.completions) == 0 {
		if !c.step() {
			return nil, false
		}
	}
	for c.nextIsCompletionAt(c.now) {
		c.step()
	}
	batch := c.completions
	c.completions = nil
	return batch, true
}

// nextIsCompletionAt reports whether the next live event is a process
// completion at virtual time t, discarding stale heap entries on the way.
func (c *Cluster) nextIsCompletionAt(t int64) bool {
	for c.events.Len() > 0 {
		e := c.events[0]
		if e.kind != evCompletion {
			return false
		}
		p, ok := c.procs[e.pid]
		if !ok || p.gen != e.gen || p.state != StateRunning {
			heap.Pop(&c.events) // stale; discard
			continue
		}
		return e.at == t
	}
	return false
}

// Requeue pushes completions back to the front of the pending queue, in
// the given order. The task manager uses it when applying a batch stops
// early (task restart or abort): the unapplied tail is requeued so the
// restarted run observes those completions exactly as if they had never
// been collected.
func (c *Cluster) Requeue(cs []Completion) {
	if len(cs) == 0 {
		return
	}
	c.completions = append(append([]Completion{}, cs...), c.completions...)
}

// Drain processes all pending events (running every process to completion)
// and returns the completions in order.
func (c *Cluster) Drain() []Completion {
	for c.step() {
	}
	done := c.completions
	c.completions = nil
	return done
}

// step executes the next event; false when the queue is empty.
func (c *Cluster) step() bool {
	for c.events.Len() > 0 {
		e := heap.Pop(&c.events).(*event)
		switch e.kind {
		case evCompletion:
			p, ok := c.procs[e.pid]
			if !ok || p.gen != e.gen || p.state != StateRunning {
				continue // stale event
			}
			c.advanceTo(e.at)
			c.removeFrom(p, p.node)
			p.state = StateDone
			p.finishedAt = c.now
			c.cfg.Metrics.Inc("sprite.proc.complete")
			c.cfg.Metrics.Observe("sprite.proc.ticks", p.finishedAt-p.startedAt)
			c.completions = append(c.completions, Completion{PID: p.PID, Name: p.Name, At: c.now, Tag: p.Tag})
			return true
		case evOwnerChange:
			c.advanceTo(e.at)
			c.ownerChange(e.node, e.act)
			return true
		case evMigrationArrive:
			p, ok := c.procs[e.pid]
			if !ok || p.gen != e.gen || p.state != StateMigrating {
				continue
			}
			c.advanceTo(e.at)
			c.nodes[e.node].incoming--
			// A process arriving at a node that crashed while it was in
			// transit is bounced home; if home is down too, it is lost to
			// the crash and reported for retry.
			if n := c.nodes[e.node]; n.down {
				if p.Home != e.node && !c.nodes[p.Home].down {
					p.migrations++
					c.startMigration(p, p.Home, "crash")
					return true
				}
				c.killCrashed(p, e.node)
				return true
			}
			// A foreign process arriving at a node whose owner became
			// active while it was in transit is bounced straight home
			// (Sprite never runs foreign work on a non-idle node).
			if n := c.nodes[e.node]; n.ownerActive && p.Home != e.node {
				p.evictions++
				c.observeEviction(p, e.node)
				c.startMigration(p, p.Home, "evict")
				return true
			}
			p.state = StateRunning
			c.placeOn(p, e.node)
			return true
		case evTick:
			if e.tkr.stopped {
				continue
			}
			c.advanceTo(e.at)
			if e.tkr.oneshot {
				e.tkr.stopped = true
			}
			e.tkr.fn(c.now)
			if !e.tkr.stopped {
				c.push(&event{at: c.now + e.tkr.interval, kind: evTick, tkr: e.tkr})
			}
			return true
		case evCrash:
			c.advanceTo(e.at)
			c.crashNode(e.node)
			return true
		case evRecover:
			c.advanceTo(e.at)
			c.recoverNode(e.node)
			return true
		}
	}
	return false
}

// advanceTo moves the clock, charging progress to every running process.
func (c *Cluster) advanceTo(t int64) {
	if t < c.now {
		t = c.now
	}
	for _, n := range c.nodes {
		c.accountNode(n, t)
	}
	c.now = t
}

// accountNode charges elapsed time to the node's processes under processor
// sharing.
func (c *Cluster) accountNode(n *Node, t int64) {
	dt := t - n.lastUpdate
	n.lastUpdate = t
	if dt <= 0 || len(n.running) == 0 {
		return
	}
	n.busyTime += dt
	rate := n.Speed / float64(len(n.running))
	for _, p := range n.running {
		p.remaining -= rate * float64(dt)
		if p.remaining < 0 {
			p.remaining = 0
		}
	}
}

// placeOn installs a process on a node and reschedules completions.
func (c *Cluster) placeOn(p *Process, id NodeID) {
	n := c.nodes[id]
	c.accountNode(n, c.now)
	p.node = id
	n.running[p.PID] = p
	c.rescheduleNode(n)
}

// removeFrom detaches a process from its node and reschedules the rest.
func (c *Cluster) removeFrom(p *Process, id NodeID) {
	n := c.nodes[id]
	c.accountNode(n, c.now)
	delete(n.running, p.PID)
	c.rescheduleNode(n)
}

// rescheduleNode recomputes completion events for every process on the node
// (their sharing factor changed). Events are pushed in PID order: the heap
// breaks same-instant ties by push sequence, so pushing in map-iteration
// order would make the order of a simultaneous completion batch — and with
// it the trace export — vary run to run.
func (c *Cluster) rescheduleNode(n *Node) {
	k := len(n.running)
	if k == 0 {
		return
	}
	rate := n.Speed / float64(k)
	procs := make([]*Process, 0, k)
	for _, p := range n.running {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].PID < procs[j].PID })
	for _, p := range procs {
		p.gen++
		finish := c.now + ceilDiv(p.remaining, rate)
		c.push(&event{at: finish, kind: evCompletion, pid: p.PID, gen: p.gen})
	}
}

func ceilDiv(work, rate float64) int64 {
	if work <= 0 {
		return 0
	}
	t := work / rate
	it := int64(t)
	if float64(it) < t {
		it++
	}
	return it
}

// observeEviction records an owner-return eviction in the observability
// sinks (§4.3.3's autonomy-first policy made visible).
func (c *Cluster) observeEviction(p *Process, from NodeID) {
	c.cfg.Metrics.Inc("sprite.proc.evict")
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			VT: c.now, Type: obs.EvProcEvict, Name: p.Name,
			PID: int(p.PID), Node: int(from),
		})
	}
}

// startMigration puts a process in transit toward the target node. reason
// labels the transfer for the trace: "place" (spawn-time idle-host
// placement), "remigrate" (the §4.3.3 poll), or "evict" (bounced home by
// a returning owner).
func (c *Cluster) startMigration(p *Process, target NodeID, reason string) {
	c.cfg.Metrics.Inc("sprite.proc.migrate")
	delay := c.cfg.MigrationDelay
	var stall int64
	if c.cfg.Stall != nil {
		if stall = c.cfg.Stall(p.Name, int(p.PID), p.migrations); stall > 0 {
			delay += stall
			c.cfg.Metrics.Inc("sprite.proc.stall")
		} else {
			stall = 0
		}
	}
	if c.cfg.Tracer != nil {
		args := map[string]string{"reason": reason}
		if stall > 0 {
			args["stall"] = fmt.Sprintf("%d", stall)
		}
		c.cfg.Tracer.Emit(obs.Event{
			VT: c.now, Type: obs.EvProcMigrate, Name: p.Name,
			PID: int(p.PID), Node: int(target),
			Args: args,
		})
	}
	if delay <= 0 {
		p.state = StateRunning
		c.placeOn(p, target)
		return
	}
	p.state = StateMigrating
	p.node = target
	p.gen++
	c.nodes[target].incoming++
	c.push(&event{at: c.now + delay, kind: evMigrationArrive, pid: p.PID, gen: p.gen, node: target})
}

// crashNode takes a workstation down: every resident process is killed
// with a Crashed completion (in PID order, for determinism) and the node
// stops accepting placements and migrations until recoverNode. Processes
// already in transit toward the node are handled on arrival.
func (c *Cluster) crashNode(id NodeID) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return // a fault plan may name nodes this cluster doesn't have
	}
	n := c.nodes[id]
	if n.down {
		return
	}
	c.accountNode(n, c.now)
	n.down = true
	c.cfg.Metrics.Inc("sprite.node.crash")
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{VT: c.now, Type: obs.EvNodeCrash, Name: n.Name, Node: int(id)})
	}
	var victims []*Process
	for _, p := range n.running {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].PID < victims[j].PID })
	for _, p := range victims {
		delete(n.running, p.PID)
		c.killCrashed(p, id)
	}
}

// recoverNode brings a crashed workstation back into service. It rejoins
// the idle-host pool immediately (its owner state is unchanged).
func (c *Cluster) recoverNode(id NodeID) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return
	}
	n := c.nodes[id]
	if !n.down {
		return
	}
	n.down = false
	n.lastUpdate = c.now
	c.cfg.Metrics.Inc("sprite.node.recover")
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{VT: c.now, Type: obs.EvNodeRecover, Name: n.Name, Node: int(id)})
	}
}

// ownerChange applies an owner arrival/departure; arrivals evict foreign
// processes back to their home nodes (Sprite's autonomy-first policy,
// §4.3.3).
func (c *Cluster) ownerChange(id NodeID, active bool) {
	n := c.nodes[id]
	n.ownerActive = active
	if !active {
		return
	}
	var foreign []*Process
	for _, p := range n.running {
		if p.Home != n.ID {
			foreign = append(foreign, p)
		}
	}
	sort.Slice(foreign, func(i, j int) bool { return foreign[i].PID < foreign[j].PID })
	for _, p := range foreign {
		c.removeFrom(p, n.ID)
		p.evictions++
		p.migrations++
		c.observeEviction(p, n.ID)
		c.startMigration(p, p.Home, "evict")
	}
}

// ObserveUtilization records each node's busy percentage of elapsed
// virtual time into the `sprite.node.utilization` histogram (one sample
// per node, 0-100). No-op without a metrics registry.
func (c *Cluster) ObserveUtilization() {
	if c.cfg.Metrics == nil {
		return
	}
	for _, u := range c.Utilization() {
		c.cfg.Metrics.Observe("sprite.node.utilization", int64(u*100))
	}
}

// Utilization returns each node's busy fraction of elapsed virtual time.
func (c *Cluster) Utilization() []float64 {
	out := make([]float64, len(c.nodes))
	if c.now == 0 {
		return out
	}
	for i, n := range c.nodes {
		c.accountNode(n, c.now)
		out[i] = float64(n.busyTime) / float64(c.now)
	}
	return out
}
