package templates

import (
	"testing"

	"papyrus/internal/tdl"
)

func TestShippedTemplatesParse(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("only %d shipped templates: %v", len(names), names)
	}
	for _, n := range names {
		text, err := Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
			continue
		}
		tpl, err := tdl.Parse(text)
		if err != nil {
			t.Errorf("template %q does not parse: %v", n, err)
			continue
		}
		if tpl.Name != n {
			t.Errorf("template %q header name %q", n, tpl.Name)
		}
	}
}

func TestDissertationTemplatesPresent(t *testing.T) {
	for _, n := range []string{
		"Padp", "Structure_Synthesis", "Mosaico",
		"create-logic-description", "logic-simulator",
		"standard-cell-place-and-route", "place-pads", "PLA-generation",
		"Macro-Route",
	} {
		if _, err := Lookup(n); err != nil {
			t.Errorf("missing dissertation template %q: %v", n, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-task"); err == nil {
		t.Error("unknown template lookup should fail")
	}
}

func TestSourceOverlay(t *testing.T) {
	src := Source(map[string]string{"Custom": "task Custom {} {}"})
	if text, err := src("Custom"); err != nil || text == "" {
		t.Errorf("overlay lookup failed: %v", err)
	}
	if _, err := src("Padp"); err != nil {
		t.Errorf("fallthrough lookup failed: %v", err)
	}
}
