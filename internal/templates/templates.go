// Package templates ships the TDL task templates used throughout the
// reproduction: the dissertation's published templates (Structure_Synthesis
// of Fig 4.2, Mosaico of Fig 4.3, Padp of §4.2.3) and the Shifter-synthesis
// thread's tasks of Fig 3.7. Templates are stored as plain ASCII files —
// one of the dissertation's stated reasons for the interpretive approach
// (§4.1: templates can be added or removed without touching the design
// database).
package templates

import (
	"embed"
	"fmt"
	"sort"
	"sync"

	"papyrus/internal/tdl"
)

//go:embed tdl/*.tdl
var files embed.FS

var (
	once    sync.Once
	byName  map[string]string
	loadErr error
)

func load() {
	byName = make(map[string]string)
	entries, err := files.ReadDir("tdl")
	if err != nil {
		loadErr = err
		return
	}
	for _, e := range entries {
		text, err := files.ReadFile("tdl/" + e.Name())
		if err != nil {
			loadErr = err
			return
		}
		tpl, err := tdl.Parse(string(text))
		if err != nil {
			loadErr = fmt.Errorf("templates: %s: %v", e.Name(), err)
			return
		}
		byName[tpl.Name] = string(text)
	}
}

// Lookup returns a shipped template's text by its task name.
func Lookup(name string) (string, error) {
	once.Do(load)
	if loadErr != nil {
		return "", loadErr
	}
	text, ok := byName[name]
	if !ok {
		return "", fmt.Errorf("templates: no task template named %q", name)
	}
	return text, nil
}

// Names lists the shipped task names, sorted.
func Names() []string {
	once.Do(load)
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Source returns a template resolver that consults extra (task name ->
// template text) before the shipped templates; extra may be nil.
func Source(extra map[string]string) func(string) (string, error) {
	return func(name string) (string, error) {
		if text, ok := extra[name]; ok {
			return text, nil
		}
		return Lookup(name)
	}
}
