package reclaim

import (
	"fmt"
	"strings"
	"testing"

	"papyrus/internal/activity"
	"papyrus/internal/attr"
	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/history"
	"papyrus/internal/memo"
	"papyrus/internal/oct"
	"papyrus/internal/sprite"
	"papyrus/internal/task"
	"papyrus/internal/templates"
)

type env struct {
	store *oct.Store
	mgr   *activity.Manager
}

func newEnv(t *testing.T) *env {
	t.Helper()
	cluster, err := sprite.NewCluster(sprite.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	store := oct.NewStore()
	tm, err := task.New(task.Config{
		Suite:     cad.NewSuite(),
		Store:     store,
		Cluster:   cluster,
		Templates: templates.Source(nil),
		AttrDB:    attr.New(cad.Measure),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{store: store, mgr: activity.NewManager(store, tm)}
}

// editLoopThread builds a thread with an initial synthesis followed by n
// simulation "refinement" rounds (the Fig 5.9 shape).
func editLoopThread(t *testing.T, e *env, rounds int) (*activity.Thread, [][]*history.Record) {
	t.Helper()
	th := e.mgr.NewThread("iterate", "u")
	if _, err := e.store.Put("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)), "seed"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.Put("/cmd", oct.TypeText, oct.Text("set d0 1\nsim\n"), "seed"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.mgr.InvokeTask(th, "create-logic-description",
		map[string]string{"Spec": "/spec"},
		map[string]string{"Outlogic": "it.logic"}); err != nil {
		t.Fatal(err)
	}
	var roundRecs [][]*history.Record
	for i := 0; i < rounds; i++ {
		rec, err := e.mgr.InvokeTask(th, "logic-simulator",
			map[string]string{"Inlogic": "it.logic", "Commands": "/cmd"},
			map[string]string{"Report": "it.report"})
		if err != nil {
			t.Fatal(err)
		}
		roundRecs = append(roundRecs, []*history.Record{rec})
	}
	return th, roundRecs
}

func TestVerticalAging(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 2)
	recs := th.SortedRecords()
	cutoff := recs[1].Time // first two records are "old"
	r := New(e.store, Policy{})
	n, _ := r.VerticalAge(th, cutoff)
	if n != 1 {
		t.Fatalf("collapsed %d, want 1", n)
	}
	if !recs[0].Collapsed || len(recs[0].Steps) != 0 {
		t.Error("old record not collapsed")
	}
	if recs[1].Collapsed {
		t.Error("new record collapsed")
	}
	// The record itself (task-level view) survives.
	if th.Stream().Len() != 3 {
		t.Errorf("stream len %d", th.Stream().Len())
	}
}

func TestVerticalAgingApproval(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 1)
	r := New(e.store, Policy{Approve: func(string, []*history.Record) bool { return false }})
	if n, _ := r.VerticalAge(th, th.SortedRecords()[1].Time+1); n != 0 {
		t.Errorf("disapproved aging still collapsed %d", n)
	}
}

func TestHorizontalAging(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 3)
	recs := th.SortedRecords()
	r := New(e.store, Policy{})
	// Prune everything older than the last record; frontier/cursor are
	// protected.
	n, _ := r.HorizontalAge(th, recs[len(recs)-1].Time)
	if n != len(recs)-1 {
		t.Fatalf("pruned %d, want %d", n, len(recs)-1)
	}
	if th.Stream().Len() != 1 {
		t.Errorf("stream len %d, want 1", th.Stream().Len())
	}
	// The survivor still references it.logic as input; that object stays
	// visible even though its creating record is gone.
	survivors := th.Stream().Records()
	for _, ref := range survivors[0].Inputs {
		if vis, err := e.store.Visible(ref); err != nil || !vis {
			t.Errorf("retained input %s hidden (%v)", ref, err)
		}
	}
}

func TestIterationGC(t *testing.T) {
	e := newEnv(t)
	th, rounds := editLoopThread(t, e, 4)
	r := New(e.store, Policy{})
	removed, err := r.CollectIterations(th, IterationHint{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	// The final round is kept; earlier unused rounds go.
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	if th.Stream().Len() != 2 { // synthesis + last round
		t.Errorf("stream len %d, want 2", th.Stream().Len())
	}
	// Removed reports are hidden; the kept round's report resolves.
	if _, err := th.ResolveInput("it.report"); err != nil {
		t.Errorf("kept round's output unresolvable: %v", err)
	}
	ref, _ := th.ResolveInput("it.report")
	if ref.Version != 4 {
		t.Errorf("kept version %d, want 4 (the representative round)", ref.Version)
	}
	for v := 1; v <= 3; v++ {
		if vis, _ := e.store.Visible(oct.Ref{Name: "it.report", Version: v}); vis {
			t.Errorf("old round report v%d still visible", v)
		}
	}
}

func TestIterationGCBadHint(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 1)
	r := New(e.store, Policy{})
	foreign := &history.Record{TaskName: "x"}
	foreign.Time = 1
	if _, err := r.CollectIterations(th, IterationHint{Rounds: [][]*history.Record{{foreign}}}); err == nil {
		t.Error("foreign hint accepted")
	}
}

func TestDeadBranchDetection(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 1)
	recs := th.SortedRecords()
	// Branch off the first record (an abandoned alternative).
	if err := th.MoveCursor(recs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.mgr.InvokeTask(th, "PLA-generation",
		map[string]string{"Inlogic": "it.logic"},
		map[string]string{"Outcell": "dead.pla"}); err != nil {
		t.Fatal(err)
	}
	deadTip := th.Cursor()
	// Move back to the main line and do more work so the dead branch ages.
	mainTip := recs[1]
	if err := th.MoveCursor(mainTip); err != nil {
		t.Fatal(err)
	}
	if _, err := e.mgr.InvokeTask(th, "logic-simulator",
		map[string]string{"Inlogic": "it.logic", "Commands": "/cmd"},
		map[string]string{"Report": "it.report"}); err != nil {
		t.Fatal(err)
	}
	r := New(e.store, Policy{})
	erased, _ := r.DeadBranches(th, deadTip.Time+1)
	if len(erased) != 1 {
		t.Fatalf("erased %d records, want 1 (the PLA branch)", len(erased))
	}
	if erased[0].TaskName != "PLA-generation" {
		t.Errorf("erased %q", erased[0].TaskName)
	}
	// Its output is hidden.
	if vis, _ := e.store.Visible(oct.Ref{Name: "dead.pla", Version: 1}); vis {
		t.Error("dead branch output still visible")
	}
	// The cursor's own branch is never collected.
	erased, _ = r.DeadBranches(th, e.store.Clock()+1000)
	for _, rec := range erased {
		anc := th.Stream().Ancestors(th.Cursor())
		if anc[rec] || rec == th.Cursor() {
			t.Error("cursor path erased")
		}
	}
}

type memArchive struct{ got []string }

func (a *memArchive) Archive(obj *oct.Object) error {
	a.got = append(a.got, obj.Name)
	return nil
}

func TestSweepObjects(t *testing.T) {
	store := oct.NewStore()
	store.Put("keep", oct.TypeText, oct.Text("payload"), "")
	store.Put("hide", oct.TypeText, oct.Text(strings.Repeat("x", 100)), "")
	store.Hide(oct.Ref{Name: "hide", Version: 1})
	arch := &memArchive{}
	r := New(store, Policy{Grace: 0, Archiver: arch})
	st, err := r.SweepObjects()
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions != 1 || st.Bytes != 100 || st.Archived != 1 {
		t.Errorf("stats %+v", st)
	}
	if len(arch.got) != 1 || arch.got[0] != "hide" {
		t.Errorf("archive %v", arch.got)
	}
	if _, err := store.Get(oct.Ref{Name: "hide", Version: 1}); err == nil {
		t.Error("swept object still present")
	}
	if _, err := store.Get(oct.Ref{Name: "keep"}); err != nil {
		t.Error("visible object swept")
	}
}

func TestSweepRespectsGrace(t *testing.T) {
	store := oct.NewStore()
	store.Put("x", oct.TypeText, oct.Text("p"), "")
	store.Hide(oct.Ref{Name: "x", Version: 1})
	r := New(store, Policy{Grace: 1_000_000})
	st, err := r.SweepObjects()
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions != 0 {
		t.Errorf("swept %d versions within grace period", st.Versions)
	}
}

// TestStorageOverheadBounded is the core §5.4 claim: with reclamation the
// store stays near the live working set; without it, single-assignment
// storage grows with every iteration.
func TestStorageOverheadBounded(t *testing.T) {
	run := func(reclaim bool) int64 {
		e := newEnv(t)
		th, rounds := editLoopThread(t, e, 6)
		if !reclaim {
			return e.store.TotalBytes()
		}
		r := New(e.store, Policy{Grace: 0})
		if _, err := r.CollectIterations(th, IterationHint{Rounds: rounds}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.SweepObjects(); err != nil {
			t.Fatal(err)
		}
		return e.store.TotalBytes()
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("reclamation ineffective: with=%d without=%d", with, without)
	}
}

// TestSweepBudgetResumes: budgeted sweeps resume from the internal cursor
// and, repeated, reclaim the same set a single unbudgeted sweep would —
// while invalidating memo entries keyed by the reclaimed versions.
func TestSweepBudgetResumes(t *testing.T) {
	store := oct.NewStore()
	cache := memo.NewCache()
	var refs []oct.Ref
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("/rc/obj%02d", i)
		for v := 0; v < 2; v++ {
			if _, err := store.Put(name, oct.TypeText, oct.Text("payload"), "t"); err != nil {
				t.Fatal(err)
			}
		}
		ref := oct.Ref{Name: name, Version: 1}
		if err := store.Hide(ref); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
		if !cache.PopulateTracked("key-"+name, &memo.Entry{
			Outputs: []memo.Output{{Name: "o", Type: oct.TypeText, Data: oct.Text("v")}},
		}, []string{ref.String()}) {
			t.Fatal("populate rejected")
		}
	}

	r := New(store, Policy{Grace: 0, SweepBudget: 7, Memo: cache})
	total := Stats{}
	sweeps := 0
	for total.Versions < len(refs) {
		st, err := r.SweepObjects()
		if err != nil {
			t.Fatal(err)
		}
		if st.Scanned == 0 && st.Versions == 0 {
			sweeps++
			if sweeps > 4*oct.DefaultStripes {
				t.Fatalf("budgeted sweeps stalled at %d/%d versions", total.Versions, len(refs))
			}
			continue
		}
		total.Versions += st.Versions
		total.Bytes += st.Bytes
		total.MemoInvalidated += st.MemoInvalidated
		sweeps++
	}
	if total.Versions != len(refs) {
		t.Fatalf("budgeted sweeps reclaimed %d versions, want %d", total.Versions, len(refs))
	}
	if total.MemoInvalidated != len(refs) {
		t.Errorf("sweeps invalidated %d memo entries, want %d", total.MemoInvalidated, len(refs))
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after sweeping every tracked version", cache.Len())
	}
	if sweeps < 2 {
		t.Errorf("budget 7 finished in %d sweep(s) — the budget did not slice the scan", sweeps)
	}
	if remaining := store.InvisibleOlderThan(store.Clock()); len(remaining) != 0 {
		t.Errorf("%d invisible versions survived the full cycle", len(remaining))
	}
}
