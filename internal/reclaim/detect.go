package reclaim

import (
	"papyrus/internal/history"
)

// Automatic iteration detection — the future-work extension of §5.4: "The
// current implementation of Papyrus is not intelligent enough to discover
// iterative processes from the history. The user must provide explicit
// hints." This file implements that discovery: it finds maximal runs of a
// repeating task-name sequence along linear portions of the control stream
// and returns them as IterationHints ready for CollectIterations.
//
// A run qualifies as an iteration when the same task-name pattern of
// length p repeats at least MinRounds times consecutively, with each
// repetition's records forming one round. Shorter patterns are preferred
// (an edit/simulate loop is found as the 2-step pattern, not as one 4-step
// pattern repeated twice).

// MinRounds is the minimum consecutive repetitions that constitute an
// iterative process worth abstracting.
const MinRounds = 3

// maxPattern bounds the repeated-sequence length considered.
const maxPattern = 4

// Threadlike is the slice of the activity.Thread surface the detector
// needs, so synthetic streams can be analyzed in tests.
type Threadlike interface {
	Stream() *history.Stream
}

// DetectIterations proposes iteration hints for a thread. Only linear
// chain segments are analyzed (branches reflect deliberate alternatives,
// not refinement rounds).
func DetectIterations(t Threadlike) []IterationHint {
	var hints []IterationHint
	for _, chain := range linearChains(t.Stream()) {
		hints = append(hints, detectInChain(chain)...)
	}
	return hints
}

// linearChains decomposes the stream into maximal single-child paths.
func linearChains(s *history.Stream) [][]*history.Record {
	var chains [][]*history.Record
	// A chain starts at a root or just after a branch/merge point.
	isStart := func(r *history.Record) bool {
		parents := r.Parents()
		if len(parents) != 1 {
			return true
		}
		return len(parents[0].Children()) != 1
	}
	for _, r := range s.Records() {
		if !isStart(r) {
			continue
		}
		chain := []*history.Record{r}
		cur := r
		for len(cur.Children()) == 1 {
			next := cur.Children()[0]
			if len(next.Parents()) != 1 {
				break // merge point ends the chain
			}
			chain = append(chain, next)
			cur = next
		}
		chains = append(chains, chain)
	}
	return chains
}

// detectInChain finds repeating task-name patterns in one linear chain.
func detectInChain(chain []*history.Record) []IterationHint {
	names := make([]string, len(chain))
	for i, r := range chain {
		names[i] = r.TaskName
	}
	var hints []IterationHint
	used := make([]bool, len(chain))
	for p := 1; p <= maxPattern; p++ {
		for start := 0; start+p*MinRounds <= len(chain); start++ {
			if used[start] {
				continue
			}
			rounds := repetitions(names, start, p)
			if rounds < MinRounds {
				continue
			}
			// Claim the region and emit a hint.
			hint := IterationHint{}
			for r := 0; r < rounds; r++ {
				var round []*history.Record
				for k := 0; k < p; k++ {
					idx := start + r*p + k
					round = append(round, chain[idx])
					used[idx] = true
				}
				hint.Rounds = append(hint.Rounds, round)
			}
			hints = append(hints, hint)
			start += rounds*p - 1
		}
	}
	return hints
}

// repetitions counts how many times names[start:start+p] repeats
// consecutively from start, skipping regions already claimed.
func repetitions(names []string, start, p int) int {
	rounds := 1
	for {
		base := start + rounds*p
		if base+p > len(names) {
			return rounds
		}
		match := true
		for k := 0; k < p; k++ {
			if names[base+k] != names[start+k] {
				match = false
				break
			}
		}
		if !match {
			return rounds
		}
		rounds++
	}
}
