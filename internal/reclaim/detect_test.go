package reclaim

import (
	"testing"

	"papyrus/internal/history"
	"papyrus/internal/oct"
)

// chainStream builds a linear stream of records with the given task names.
func chainStream(names []string) (*history.Stream, []*history.Record) {
	s := history.NewStream()
	var prev *history.Record
	var recs []*history.Record
	for i, n := range names {
		r := &history.Record{TaskName: n, Time: int64(i),
			Outputs: []oct.Ref{{Name: n, Version: i + 1}}}
		s.Append(r, prev)
		prev = r
		recs = append(recs, r)
	}
	return s, recs
}

func namesOfHint(h IterationHint) [][]string {
	var out [][]string
	for _, round := range h.Rounds {
		var names []string
		for _, r := range round {
			names = append(names, r.TaskName)
		}
		out = append(out, names)
	}
	return out
}

func TestDetectSingleTaskIteration(t *testing.T) {
	e := newEnv(t)
	th, _ := editLoopThread(t, e, 4)
	hints := DetectIterations(th)
	if len(hints) != 1 {
		t.Fatalf("hints %d, want 1", len(hints))
	}
	if len(hints[0].Rounds) != 4 {
		t.Errorf("rounds %d, want 4", len(hints[0].Rounds))
	}
	for _, round := range hints[0].Rounds {
		if len(round) != 1 || round[0].TaskName != "logic-simulator" {
			t.Errorf("round %v", namesOfHint(hints[0]))
		}
	}
	// Detected hints feed straight into CollectIterations.
	r := New(e.store, Policy{})
	removed, err := r.CollectIterations(th, hints[0])
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Errorf("removed %d, want 3", removed)
	}
}

func TestDetectMultiStepPattern(t *testing.T) {
	// edit/simulate pairs repeated 3 times, framed by other work.
	s, _ := chainStream([]string{
		"synthesize",
		"edit", "simulate",
		"edit", "simulate",
		"edit", "simulate",
		"route",
	})
	th := streamThread(t, s)
	hints := DetectIterations(th)
	if len(hints) != 1 {
		t.Fatalf("hints %d, want 1: %v", len(hints), hints)
	}
	h := hints[0]
	if len(h.Rounds) != 3 || len(h.Rounds[0]) != 2 {
		t.Fatalf("pattern wrong: %v", namesOfHint(h))
	}
	if h.Rounds[0][0].TaskName != "edit" || h.Rounds[0][1].TaskName != "simulate" {
		t.Errorf("pattern %v", namesOfHint(h))
	}
}

func TestDetectBelowThreshold(t *testing.T) {
	s, _ := chainStream([]string{"a", "sim", "sim", "b"})
	th := streamThread(t, s)
	if hints := DetectIterations(th); len(hints) != 0 {
		t.Errorf("2 repetitions should not qualify (MinRounds=%d): %d hints", MinRounds, len(hints))
	}
}

func TestDetectIgnoresBranches(t *testing.T) {
	s, recs := chainStream([]string{"sim", "sim", "sim"})
	// A branch in the middle breaks the linear chain.
	s.Append(&history.Record{TaskName: "alt", Time: 99}, recs[1])
	th := streamThread(t, s)
	if hints := DetectIterations(th); len(hints) != 0 {
		t.Errorf("branched region treated as iteration: %d hints", len(hints))
	}
}

func TestDetectPrefersShortPattern(t *testing.T) {
	// sim repeated 6 times: one 1-step pattern with 6 rounds, not a
	// 2-step pattern with 3.
	s, _ := chainStream([]string{"sim", "sim", "sim", "sim", "sim", "sim"})
	th := streamThread(t, s)
	hints := DetectIterations(th)
	if len(hints) != 1 || len(hints[0].Rounds) != 6 || len(hints[0].Rounds[0]) != 1 {
		t.Errorf("pattern selection wrong: %+v", hints)
	}
}

// streamThread wraps a raw stream in a thread for the detector.
func streamThread(t *testing.T, s *history.Stream) *activityThread {
	t.Helper()
	return &activityThread{stream: s}
}

// activityThread is a minimal stand-in honoring the detector's interface
// needs. DetectIterations only touches Stream(), so embed it via the real
// activity.Thread when available; for synthetic streams we adapt here.
type activityThread struct {
	stream *history.Stream
}

func (a *activityThread) Stream() *history.Stream { return a.stream }
