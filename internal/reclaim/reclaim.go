// Package reclaim implements Papyrus's storage management (dissertation
// §5.4): the measures that bound the storage overhead of single-assignment
// updates. Three history-reduction mechanisms — vertical and horizontal
// aging (Figs 5.7/5.8) and garbage collection of iterative refinements and
// dead-end branches (Fig 5.9) — plus the background object reclaimer that
// physically deletes (or archives) versions that stayed invisible past a
// grace period (§3.3.1).
//
// As in the dissertation, destructive history operations ask for user
// approval first: the Policy's Approve hook is consulted before pruning.
package reclaim

import (
	"fmt"
	"sort"
	"sync"

	"papyrus/internal/activity"
	"papyrus/internal/history"
	"papyrus/internal/memo"
	"papyrus/internal/oct"
)

// Archiver receives reclaimed versions. The dissertation's prototype
// simply deleted them but kept the interface general enough for a tape
// archive; so do we.
type Archiver interface {
	Archive(obj *oct.Object) error
}

// Policy parameterizes the reclaimer.
type Policy struct {
	// Approve is consulted before destructive history operations; nil
	// approves everything (batch mode).
	Approve func(action string, records []*history.Record) bool
	// Archiver receives physically reclaimed objects; nil deletes.
	Archiver Archiver
	// Grace is the invisibility age (in store-clock ticks) before a
	// hidden version is physically reclaimed.
	Grace int64
	// SweepBudget bounds how many index records one SweepObjects call
	// examines (whole stripes, so slices overshoot by at most one
	// stripe's population); <= 0 sweeps the whole store. The sweep
	// cursor resumes where the last slice stopped, so repeated budgeted
	// sweeps cycle the full store — the incremental background
	// reclaimer's knob (docs/RECLAIM.md).
	SweepBudget int
	// Memo, when set, has entries depending on reclaimed versions
	// invalidated at sweep time, so a stale content-pinned entry can
	// never re-materialize a version storage management deleted.
	Memo *memo.Cache
}

// Reclaimer runs storage management over a store. In the dissertation it
// is a separate process communicating through the persistent history; here
// it is a component invoked by the session loop (or papyrusd's per-shard
// background sweeper). Sweeps are serialized by an internal mutex so the
// resumable cursor stays coherent under concurrent callers.
type Reclaimer struct {
	store  *oct.Store
	policy Policy

	mu     sync.Mutex
	cursor int // stripe to resume the next budgeted sweep from
}

// New builds a reclaimer.
func New(store *oct.Store, policy Policy) *Reclaimer {
	return &Reclaimer{store: store, policy: policy}
}

func (r *Reclaimer) approved(action string, recs []*history.Record) bool {
	if r.policy.Approve == nil {
		return true
	}
	return r.policy.Approve(action, recs)
}

// VerticalAge abstracts away the internal details of records older than
// the cutoff (Fig 5.7): their step lists are dropped and the record is
// marked Collapsed, keeping only the task-level view. The pruned stream
// is re-logged (Thread.LogReclaim) so a crash cannot resurrect the
// collapsed details from earlier attach records. Returns the number of
// collapsed records.
func (r *Reclaimer) VerticalAge(t *activity.Thread, cutoff int64) (int, error) {
	var victims []*history.Record
	for _, rec := range t.Stream().Records() {
		if !rec.Collapsed && rec.Time < cutoff && len(rec.Steps) > 0 {
			victims = append(victims, rec)
		}
	}
	if len(victims) == 0 || !r.approved("vertical-age", victims) {
		return 0, nil
	}
	for _, rec := range victims {
		rec.Steps = nil
		rec.Collapsed = true
	}
	return len(victims), t.LogReclaim()
}

// HorizontalAge prunes records older than the cutoff entirely (Fig 5.8),
// cutting them out of the control stream and hiding their outputs unless
// a retained record still references them. Frontier records and records
// on the path to the current cursor are never pruned. The pruned stream
// is re-logged durably (Thread.LogReclaim). Returns the number of
// pruned records.
func (r *Reclaimer) HorizontalAge(t *activity.Thread, cutoff int64) (int, error) {
	s := t.Stream()
	protected := map[*history.Record]bool{}
	for _, f := range s.Frontier() {
		protected[f] = true
	}
	if c := t.Cursor(); c != nil {
		protected[c] = true
	}
	var victims []*history.Record
	for _, rec := range s.Records() {
		if rec.Time < cutoff && !protected[rec] {
			victims = append(victims, rec)
		}
	}
	if len(victims) == 0 || !r.approved("horizontal-age", victims) {
		return 0, nil
	}
	for _, rec := range victims {
		s.Cut(rec)
	}
	r.hideUnreferenced(t, victims)
	return len(victims), t.LogReclaim()
}

// IterationHint identifies one iterative-refinement process: the rounds of
// an iterated task sequence, oldest first. The dissertation's prototype
// "is not intelligent enough to discover iterative processes from the
// history. The user must provide explicit hints" (§5.4) — same here.
type IterationHint struct {
	Rounds [][]*history.Record
}

// CollectIterations abstracts an iterative process to the rounds whose
// outputs are actually used by task invocations outside the iteration
// (Fig 5.9); the other rounds are cut and their objects hidden. Returns
// the number of records removed.
func (r *Reclaimer) CollectIterations(t *activity.Thread, hint IterationHint) (int, error) {
	s := t.Stream()
	inIteration := map[*history.Record]bool{}
	for _, round := range hint.Rounds {
		for _, rec := range round {
			if _, ok := s.ByID(rec.ID); !ok {
				return 0, fmt.Errorf("reclaim: hinted record %d not in thread %q", rec.ID, t.Name())
			}
			inIteration[rec] = true
		}
	}
	// Outputs consumed by task invocations outside the iteration keep
	// their round alive ("the small subset that is actually used", §5.4);
	// mere presence in the thread state does not.
	usedOutside := map[oct.Ref]bool{}
	for _, rec := range s.Records() {
		if inIteration[rec] {
			continue
		}
		for _, in := range rec.Inputs {
			usedOutside[in] = true
		}
	}

	var doomed []*history.Record
	for ri, round := range hint.Rounds {
		keep := false
		for _, rec := range round {
			for _, out := range rec.Outputs {
				if usedOutside[out] {
					keep = true
				}
			}
		}
		// The final round survives by default: it is the iteration's
		// result even if nothing consumed it yet.
		if ri == len(hint.Rounds)-1 {
			keep = true
		}
		if !keep {
			doomed = append(doomed, round...)
		}
	}
	if len(doomed) == 0 || !r.approved("iteration-gc", doomed) {
		return 0, nil
	}
	for _, rec := range doomed {
		s.Cut(rec)
	}
	r.hideUnreferenced(t, doomed)
	return len(doomed), t.LogReclaim()
}

// DeadBranches finds frontier branches whose tip has not been touched
// since the cutoff and, upon approval, erases them (§5.4: "a frontier
// branch is marked as a dead-end when the difference between the last
// access time and the current time exceeds a certain threshold"). The
// branch containing the current cursor is exempt. The pruned stream is
// re-logged durably. Returns erased records.
func (r *Reclaimer) DeadBranches(t *activity.Thread, cutoff int64) ([]*history.Record, error) {
	s := t.Stream()
	cursorAnc := s.Ancestors(t.Cursor())
	if t.Cursor() != nil {
		cursorAnc[t.Cursor()] = true
	}
	var erased []*history.Record
	for _, tip := range s.Frontier() {
		if tip.Time >= cutoff || cursorAnc[tip] || tip == t.Cursor() {
			continue
		}
		// Walk up to the branch point: the maximal chain ending at tip
		// whose records have single children.
		start := tip
		for {
			parents := start.Parents()
			if len(parents) != 1 {
				break
			}
			p := parents[0]
			if len(p.Children()) != 1 || cursorAnc[p] || p.Time >= cutoff {
				break
			}
			start = p
		}
		branch := collectDescendants(start)
		if !r.approved("dead-branch", branch) {
			continue
		}
		erased = append(erased, s.Erase(start)...)
	}
	r.hideUnreferenced(t, erased)
	if len(erased) == 0 {
		return nil, nil
	}
	return erased, t.LogReclaim()
}

func collectDescendants(rec *history.Record) []*history.Record {
	var out []*history.Record
	seen := map[*history.Record]bool{}
	var walk func(x *history.Record)
	walk = func(x *history.Record) {
		if seen[x] {
			return
		}
		seen[x] = true
		out = append(out, x)
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(rec)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// hideUnreferenced hides the removed records' outputs unless a retained
// record in the thread still references them.
func (r *Reclaimer) hideUnreferenced(t *activity.Thread, removed []*history.Record) {
	still := map[oct.Ref]bool{}
	for _, rec := range t.Stream().Records() {
		for _, ref := range rec.Inputs {
			still[ref] = true
		}
		for _, ref := range rec.Outputs {
			still[ref] = true
		}
	}
	for _, rec := range removed {
		for _, ref := range rec.Outputs {
			if !still[ref] {
				_ = r.store.Hide(ref)
			}
		}
	}
}

// Stats summarizes one reclamation sweep slice.
type Stats struct {
	Versions        int   // versions physically reclaimed
	Bytes           int64 // payload bytes released
	Archived        int
	Scanned         int // index records examined by the candidate scan
	MemoInvalidated int // memo entries dropped because they depended on reclaimed versions
}

// SweepObjects runs one sweep slice under the policy's budget — the
// background reclamation of §3.3.1 and §5.4. With SweepBudget <= 0 a
// call sweeps the whole store (the historical monolithic behavior);
// with a budget it scans at most ~budget index records from the
// resumable cursor and returns, so a per-virtual-tick caller amortizes
// the full scan over many slices.
func (r *Reclaimer) SweepObjects() (Stats, error) {
	return r.Sweep(r.policy.SweepBudget)
}

// Sweep runs one reclamation slice with an explicit scan budget,
// overriding the policy's. Candidates — invisible versions whose last
// access is at least Grace ticks old — are physically deleted through
// oct.Store.ReclaimVersions, which WAL-logs each stripe's deletions
// (RecReclaim) before acknowledging them, then memo entries depending
// on the reclaimed versions are invalidated, then reclaimed objects are
// handed to the Archiver. An archive error is reported after the
// deletion is already durable (the version is gone either way — the
// archive is best-effort by design, docs/RECLAIM.md).
func (r *Reclaimer) Sweep(budget int) (Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.store.Clock() - r.policy.Grace
	refs, next, scanned := r.store.InvisibleSlice(cutoff, r.cursor, budget)
	r.cursor = next
	st := Stats{Scanned: scanned}
	if len(refs) == 0 {
		return st, nil
	}
	removed, rerr := r.store.ReclaimVersions(refs, cutoff)
	reclaimed := make([]oct.Ref, len(removed))
	for i, obj := range removed {
		reclaimed[i] = oct.Ref{Name: obj.Name, Version: obj.Version}
		st.Versions++
		st.Bytes += int64(obj.Data.Size())
	}
	if r.policy.Memo != nil {
		st.MemoInvalidated = r.policy.Memo.Invalidate(reclaimed)
	}
	if rerr != nil {
		return st, rerr
	}
	if r.policy.Archiver != nil {
		for _, obj := range removed {
			if err := r.policy.Archiver.Archive(obj); err != nil {
				return st, fmt.Errorf("reclaim: archive %s@%d: %w", obj.Name, obj.Version, err)
			}
			st.Archived++
		}
	}
	return st, nil
}
