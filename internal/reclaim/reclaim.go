// Package reclaim implements Papyrus's storage management (dissertation
// §5.4): the measures that bound the storage overhead of single-assignment
// updates. Three history-reduction mechanisms — vertical and horizontal
// aging (Figs 5.7/5.8) and garbage collection of iterative refinements and
// dead-end branches (Fig 5.9) — plus the background object reclaimer that
// physically deletes (or archives) versions that stayed invisible past a
// grace period (§3.3.1).
//
// As in the dissertation, destructive history operations ask for user
// approval first: the Policy's Approve hook is consulted before pruning.
package reclaim

import (
	"fmt"
	"sort"

	"papyrus/internal/activity"
	"papyrus/internal/history"
	"papyrus/internal/oct"
)

// Archiver receives reclaimed versions. The dissertation's prototype
// simply deleted them but kept the interface general enough for a tape
// archive; so do we.
type Archiver interface {
	Archive(obj *oct.Object) error
}

// Policy parameterizes the reclaimer.
type Policy struct {
	// Approve is consulted before destructive history operations; nil
	// approves everything (batch mode).
	Approve func(action string, records []*history.Record) bool
	// Archiver receives physically reclaimed objects; nil deletes.
	Archiver Archiver
	// Grace is the invisibility age (in store-clock ticks) before a
	// hidden version is physically reclaimed.
	Grace int64
}

// Reclaimer runs storage management over a store. In the dissertation it
// is a separate process communicating through the persistent history; here
// it is a component invoked by the session loop.
type Reclaimer struct {
	store  *oct.Store
	policy Policy
}

// New builds a reclaimer.
func New(store *oct.Store, policy Policy) *Reclaimer {
	return &Reclaimer{store: store, policy: policy}
}

func (r *Reclaimer) approved(action string, recs []*history.Record) bool {
	if r.policy.Approve == nil {
		return true
	}
	return r.policy.Approve(action, recs)
}

// VerticalAge abstracts away the internal details of records older than
// the cutoff (Fig 5.7): their step lists are dropped and the record is
// marked Collapsed, keeping only the task-level view. Returns the number
// of collapsed records.
func (r *Reclaimer) VerticalAge(t *activity.Thread, cutoff int64) int {
	var victims []*history.Record
	for _, rec := range t.Stream().Records() {
		if !rec.Collapsed && rec.Time < cutoff && len(rec.Steps) > 0 {
			victims = append(victims, rec)
		}
	}
	if len(victims) == 0 || !r.approved("vertical-age", victims) {
		return 0
	}
	for _, rec := range victims {
		rec.Steps = nil
		rec.Collapsed = true
	}
	return len(victims)
}

// HorizontalAge prunes records older than the cutoff entirely (Fig 5.8),
// cutting them out of the control stream and hiding their outputs unless
// a retained record still references them. Frontier records and records
// on the path to the current cursor are never pruned. Returns the number
// of pruned records.
func (r *Reclaimer) HorizontalAge(t *activity.Thread, cutoff int64) int {
	s := t.Stream()
	protected := map[*history.Record]bool{}
	for _, f := range s.Frontier() {
		protected[f] = true
	}
	if c := t.Cursor(); c != nil {
		protected[c] = true
	}
	var victims []*history.Record
	for _, rec := range s.Records() {
		if rec.Time < cutoff && !protected[rec] {
			victims = append(victims, rec)
		}
	}
	if len(victims) == 0 || !r.approved("horizontal-age", victims) {
		return 0
	}
	for _, rec := range victims {
		s.Cut(rec)
	}
	r.hideUnreferenced(t, victims)
	return len(victims)
}

// IterationHint identifies one iterative-refinement process: the rounds of
// an iterated task sequence, oldest first. The dissertation's prototype
// "is not intelligent enough to discover iterative processes from the
// history. The user must provide explicit hints" (§5.4) — same here.
type IterationHint struct {
	Rounds [][]*history.Record
}

// CollectIterations abstracts an iterative process to the rounds whose
// outputs are actually used by task invocations outside the iteration
// (Fig 5.9); the other rounds are cut and their objects hidden. Returns
// the number of records removed.
func (r *Reclaimer) CollectIterations(t *activity.Thread, hint IterationHint) (int, error) {
	s := t.Stream()
	inIteration := map[*history.Record]bool{}
	for _, round := range hint.Rounds {
		for _, rec := range round {
			if _, ok := s.ByID(rec.ID); !ok {
				return 0, fmt.Errorf("reclaim: hinted record %d not in thread %q", rec.ID, t.Name())
			}
			inIteration[rec] = true
		}
	}
	// Outputs consumed by task invocations outside the iteration keep
	// their round alive ("the small subset that is actually used", §5.4);
	// mere presence in the thread state does not.
	usedOutside := map[oct.Ref]bool{}
	for _, rec := range s.Records() {
		if inIteration[rec] {
			continue
		}
		for _, in := range rec.Inputs {
			usedOutside[in] = true
		}
	}

	var doomed []*history.Record
	for ri, round := range hint.Rounds {
		keep := false
		for _, rec := range round {
			for _, out := range rec.Outputs {
				if usedOutside[out] {
					keep = true
				}
			}
		}
		// The final round survives by default: it is the iteration's
		// result even if nothing consumed it yet.
		if ri == len(hint.Rounds)-1 {
			keep = true
		}
		if !keep {
			doomed = append(doomed, round...)
		}
	}
	if len(doomed) == 0 || !r.approved("iteration-gc", doomed) {
		return 0, nil
	}
	for _, rec := range doomed {
		s.Cut(rec)
	}
	r.hideUnreferenced(t, doomed)
	return len(doomed), nil
}

// DeadBranches finds frontier branches whose tip has not been touched
// since the cutoff and, upon approval, erases them (§5.4: "a frontier
// branch is marked as a dead-end when the difference between the last
// access time and the current time exceeds a certain threshold"). The
// branch containing the current cursor is exempt. Returns erased records.
func (r *Reclaimer) DeadBranches(t *activity.Thread, cutoff int64) []*history.Record {
	s := t.Stream()
	cursorAnc := s.Ancestors(t.Cursor())
	if t.Cursor() != nil {
		cursorAnc[t.Cursor()] = true
	}
	var erased []*history.Record
	for _, tip := range s.Frontier() {
		if tip.Time >= cutoff || cursorAnc[tip] || tip == t.Cursor() {
			continue
		}
		// Walk up to the branch point: the maximal chain ending at tip
		// whose records have single children.
		start := tip
		for {
			parents := start.Parents()
			if len(parents) != 1 {
				break
			}
			p := parents[0]
			if len(p.Children()) != 1 || cursorAnc[p] || p.Time >= cutoff {
				break
			}
			start = p
		}
		branch := collectDescendants(start)
		if !r.approved("dead-branch", branch) {
			continue
		}
		erased = append(erased, s.Erase(start)...)
	}
	r.hideUnreferenced(t, erased)
	return erased
}

func collectDescendants(rec *history.Record) []*history.Record {
	var out []*history.Record
	seen := map[*history.Record]bool{}
	var walk func(x *history.Record)
	walk = func(x *history.Record) {
		if seen[x] {
			return
		}
		seen[x] = true
		out = append(out, x)
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(rec)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// hideUnreferenced hides the removed records' outputs unless a retained
// record in the thread still references them.
func (r *Reclaimer) hideUnreferenced(t *activity.Thread, removed []*history.Record) {
	still := map[oct.Ref]bool{}
	for _, rec := range t.Stream().Records() {
		for _, ref := range rec.Inputs {
			still[ref] = true
		}
		for _, ref := range rec.Outputs {
			still[ref] = true
		}
	}
	for _, rec := range removed {
		for _, ref := range rec.Outputs {
			if !still[ref] {
				_ = r.store.Hide(ref)
			}
		}
	}
}

// Stats summarizes one reclamation sweep.
type Stats struct {
	Versions int
	Bytes    int64
	Archived int
}

// SweepObjects physically reclaims versions that have been invisible
// longer than the grace period — the background reclamation of §3.3.1 and
// §5.4. Archived objects go to the policy's Archiver; otherwise versions
// are deleted.
func (r *Reclaimer) SweepObjects() (Stats, error) {
	cutoff := r.store.Clock() - r.policy.Grace
	var st Stats
	for _, ref := range r.store.InvisibleOlderThan(cutoff) {
		obj, err := r.store.Peek(ref)
		if err != nil {
			continue
		}
		size := int64(obj.Data.Size())
		if r.policy.Archiver != nil {
			if err := r.policy.Archiver.Archive(obj); err != nil {
				return st, fmt.Errorf("reclaim: archive %s: %w", ref, err)
			}
			st.Archived++
		}
		if err := r.store.Remove(ref); err != nil {
			return st, err
		}
		st.Versions++
		st.Bytes += size
	}
	return st, nil
}
