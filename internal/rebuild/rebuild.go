// Package rebuild implements derivation-history-driven reconstruction —
// the capability the dissertation motivates in §1.4: "the UNIX Make
// facility requires the knowledge of the detailed tool execution sequence
// that are involved in creating an object, i.e., its derivation history,
// to reconstruct the design object when one or more of its dependent
// objects are modified." Papyrus records that history automatically; this
// package replays it.
//
// Unlike the VOV baseline's retracing (which regenerates everything
// downstream of a modification), Rebuild is demand-driven: it regenerates
// exactly one target from the latest versions of its sources, and
// OutOfDate reports whether that is necessary at all.
package rebuild

import (
	"fmt"

	"papyrus/internal/adg"
	"papyrus/internal/cad"
	"papyrus/internal/oct"
)

// Builder replays derivation recipes against an object store.
type Builder struct {
	suite *cad.Suite
	store *oct.Store
	graph *adg.Graph
}

// New returns a Builder over the given derivation graph.
func New(suite *cad.Suite, store *oct.Store, graph *adg.Graph) *Builder {
	return &Builder{suite: suite, store: store, graph: graph}
}

// OutOfDate reports whether any transitive source of the target has a
// newer visible version in the store than the one its derivation used.
func (b *Builder) OutOfDate(target oct.Ref) (bool, error) {
	ops, err := b.graph.Derivation(target)
	if err != nil {
		return false, err
	}
	for _, op := range ops {
		for _, in := range op.Inputs {
			if _, produced := b.graph.Producer(in); produced {
				continue // derived internally; covered by its own op
			}
			latest := b.store.LatestVersion(in.Name)
			if latest > in.Version {
				return true, nil
			}
		}
	}
	return false, nil
}

// Rebuild replays the target's derivation history against the latest
// version of every source object, creating new versions of each derived
// object (single-assignment: nothing is updated in place). It returns the
// ref of the regenerated target.
func (b *Builder) Rebuild(target oct.Ref) (oct.Ref, error) {
	ops, err := b.graph.Derivation(target)
	if err != nil {
		return oct.Ref{}, err
	}
	if len(ops) == 0 {
		return oct.Ref{}, fmt.Errorf("rebuild: %s has no recorded derivation", target)
	}
	// current maps an object name to the version this rebuild should use:
	// regenerated versions shadow stored ones; sources resolve to their
	// latest visible version.
	current := map[string]oct.Ref{}
	resolve := func(in oct.Ref) (oct.Ref, error) {
		if ref, ok := current[in.Name]; ok {
			return ref, nil
		}
		obj, err := b.store.Peek(oct.Ref{Name: in.Name})
		if err != nil {
			// The exact recorded version may still exist even if no
			// visible latest does.
			if _, err2 := b.store.Peek(in); err2 == nil {
				return in, nil
			}
			return oct.Ref{}, fmt.Errorf("rebuild: source %s unavailable: %v", in.Name, err)
		}
		return oct.Ref{Name: obj.Name, Version: obj.Version}, nil
	}

	var targetRef oct.Ref
	for _, op := range ops {
		tool, ok := b.suite.Tool(op.Tool)
		if !ok {
			return oct.Ref{}, fmt.Errorf("rebuild: tool %q no longer in the suite", op.Tool)
		}
		ctx := &cad.Ctx{
			Txn:     b.store.Begin(),
			Tool:    op.Tool,
			Options: op.Options,
		}
		for _, in := range op.Inputs {
			ref, err := resolve(in)
			if err != nil {
				ctx.Txn.Abort()
				return oct.Ref{}, err
			}
			obj, err := b.store.Get(ref)
			if err != nil {
				ctx.Txn.Abort()
				return oct.Ref{}, err
			}
			ctx.Inputs = append(ctx.Inputs, obj)
		}
		for _, out := range op.Outputs {
			ctx.OutputNames = append(ctx.OutputNames, out.Name)
		}
		if err := tool.Run(ctx); err != nil {
			ctx.Txn.Abort()
			return oct.Ref{}, fmt.Errorf("rebuild: re-running %s: %v", op.Tool, err)
		}
		objs, err := ctx.Txn.Commit()
		if err != nil {
			return oct.Ref{}, err
		}
		for _, obj := range objs {
			ref := oct.Ref{Name: obj.Name, Version: obj.Version}
			current[obj.Name] = ref
			if obj.Name == target.Name {
				targetRef = ref
			}
		}
	}
	if targetRef.Name == "" {
		return oct.Ref{}, fmt.Errorf("rebuild: derivation replay did not regenerate %s", target.Name)
	}
	return targetRef, nil
}
