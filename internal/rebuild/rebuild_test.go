package rebuild

import (
	"testing"

	"papyrus/internal/adg"
	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/history"
	"papyrus/internal/oct"
)

type env struct {
	suite   *cad.Suite
	store   *oct.Store
	graph   *adg.Graph
	builder *Builder
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{suite: cad.NewSuite(), store: oct.NewStore(), graph: adg.New()}
	e.builder = New(e.suite, e.store, e.graph)
	return e
}

// runAndRecord executes a tool and records the step in the graph, like the
// task manager + inference engine would.
func (e *env) runAndRecord(t *testing.T, tool string, options []string, inputs []oct.Ref, outputs []string) []oct.Ref {
	t.Helper()
	tl, ok := e.suite.Tool(tool)
	if !ok {
		t.Fatalf("no tool %q", tool)
	}
	ctx := &cad.Ctx{Txn: e.store.Begin(), Tool: tool, Options: options, OutputNames: outputs}
	for _, ref := range inputs {
		obj, err := e.store.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Inputs = append(ctx.Inputs, obj)
	}
	if err := tl.Run(ctx); err != nil {
		t.Fatal(err)
	}
	objs, err := ctx.Txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	rec := history.StepRecord{Name: tool, Tool: tool, Options: options, Inputs: inputs}
	var outRefs []oct.Ref
	for _, obj := range objs {
		ref := oct.Ref{Name: obj.Name, Version: obj.Version}
		rec.Outputs = append(rec.Outputs, ref)
		outRefs = append(outRefs, ref)
	}
	e.graph.AddStep(rec)
	return outRefs
}

func seed(t *testing.T, e *env, name, text string) oct.Ref {
	t.Helper()
	obj, err := e.store.Put(name, oct.TypeBehavioral, oct.Text(text), "designer")
	if err != nil {
		t.Fatal(err)
	}
	return oct.Ref{Name: obj.Name, Version: obj.Version}
}

func buildChain(t *testing.T, e *env) (spec, net, opt oct.Ref) {
	spec = seed(t, e, "spec", logic.ShifterBehavior(3))
	net = e.runAndRecord(t, "bdsyn", nil, []oct.Ref{spec}, []string{"net"})[0]
	opt = e.runAndRecord(t, "misII", nil, []oct.Ref{net}, []string{"opt"})[0]
	return
}

func TestOutOfDate(t *testing.T) {
	e := newEnv(t)
	spec, _, opt := buildChain(t, e)
	stale, err := e.builder.OutOfDate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Error("fresh chain reported out of date")
	}
	// A new spec version makes the chain stale.
	seed(t, e, "spec", logic.ShifterBehavior(4))
	stale, err = e.builder.OutOfDate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("modified source not detected")
	}
	_ = spec
}

func TestRebuildRegeneratesFromLatestSource(t *testing.T) {
	e := newEnv(t)
	_, _, opt := buildChain(t, e)
	// Modify the source: wider shifter.
	seed(t, e, "spec", logic.ShifterBehavior(4))
	newOpt, err := e.builder.Rebuild(opt)
	if err != nil {
		t.Fatal(err)
	}
	if newOpt.Name != "opt" || newOpt.Version <= opt.Version {
		t.Fatalf("rebuilt ref %v (old %v)", newOpt, opt)
	}
	obj, err := e.store.Get(newOpt)
	if err != nil {
		t.Fatal(err)
	}
	nw := obj.Data.(*logic.Network)
	if len(nw.Inputs) != 5 { // 4 data + select: the NEW spec
		t.Errorf("rebuilt network has %d inputs, want 5", len(nw.Inputs))
	}
	// Single assignment: the old version is untouched.
	oldObj, err := e.store.Get(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldObj.Data.(*logic.Network).Inputs) != 4 {
		t.Error("rebuild mutated the old version")
	}
}

func TestRebuildNoDerivation(t *testing.T) {
	e := newEnv(t)
	src := seed(t, e, "orphan", logic.ShifterBehavior(2))
	if _, err := e.builder.Rebuild(src); err == nil {
		t.Error("source object rebuild should fail")
	}
}

func TestRebuildUnknownTool(t *testing.T) {
	e := newEnv(t)
	spec := seed(t, e, "spec", logic.ShifterBehavior(2))
	e.graph.AddStep(history.StepRecord{
		Name: "gone", Tool: "extinct-tool",
		Inputs:  []oct.Ref{spec},
		Outputs: []oct.Ref{{Name: "x", Version: 1}},
	})
	if _, err := e.builder.Rebuild(oct.Ref{Name: "x", Version: 1}); err == nil {
		t.Error("missing tool should fail the rebuild")
	}
}

func TestRebuildDiamond(t *testing.T) {
	// spec -> net; net feeds both misII and espresso; both feed a check.
	e := newEnv(t)
	spec := seed(t, e, "spec", logic.ShifterBehavior(3))
	net := e.runAndRecord(t, "bdsyn", nil, []oct.Ref{spec}, []string{"net"})[0]
	opt := e.runAndRecord(t, "misII", nil, []oct.Ref{net}, []string{"opt"})[0]
	min := e.runAndRecord(t, "espresso", nil, []oct.Ref{net}, []string{"min"})[0]
	_ = min
	// Rebuild only opt after a spec change: espresso's output is not
	// touched (demand-driven, unlike VOV's retrace-everything).
	minVersionsBefore := e.store.LatestVersion("min")
	seed(t, e, "spec", logic.ShifterBehavior(4))
	if _, err := e.builder.Rebuild(opt); err != nil {
		t.Fatal(err)
	}
	if e.store.LatestVersion("min") != minVersionsBefore {
		t.Error("demand-driven rebuild regenerated an unrelated object")
	}
	if e.store.LatestVersion("opt") <= 1 {
		t.Error("target not regenerated")
	}
}
