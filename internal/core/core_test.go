package core

import (
	"strings"
	"testing"

	"papyrus/internal/cad/logic"
	"papyrus/internal/oct"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndSession(t *testing.T) {
	s := newSystem(t, Config{})
	if _, err := s.ImportObject("/specs/shifter", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("Shifter-synthesis", "chiueh")
	rec, err := s.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/specs/shifter"},
		map[string]string{"Outlogic": "shifter.logic"})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Steps) != 2 {
		t.Fatalf("record %+v", rec)
	}
	// Inference observed the steps: the output's type is known.
	if s.Inference == nil {
		t.Fatal("inference engine missing")
	}
	outRef := rec.Outputs[0]
	typ, ok := s.Inference.TypeOf(outRef)
	if !ok || typ != oct.TypeLogic {
		t.Errorf("inferred type %s ok=%v", typ, ok)
	}
	// Rendering works.
	view := s.RenderThread(th)
	if !strings.Contains(view, "create-logic-description") {
		t.Errorf("thread render:\n%s", view)
	}
	scope := s.RenderScope(th)
	if !strings.Contains(scope, "shifter.logic") {
		t.Errorf("scope render:\n%s", scope)
	}
}

func TestTableIPapyrusSatisfiesAll(t *testing.T) {
	s := newSystem(t, Config{})
	rows := s.TableI()
	if len(rows) != 14 {
		t.Fatalf("rows %d, want 14", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Name != "Papyrus" || !last.Implemented {
		t.Fatalf("last row %+v", last)
	}
	f := last.F
	if !(f.ToolEncapsulation && f.ToolNavigation && f.DesignExploration &&
		f.DataEvolution && f.ContextManagement && f.CooperativeWork && f.DistributedArchitecture) {
		t.Errorf("Papyrus row not all-Yes: %+v", f)
	}
	implemented := 0
	for _, r := range rows {
		if r.Implemented {
			implemented++
		}
	}
	if implemented != 3 { // Powerframe, VOV, Papyrus
		t.Errorf("implemented rows %d, want 3", implemented)
	}
}

func TestSpacesAreMemoized(t *testing.T) {
	s := newSystem(t, Config{})
	a := s.Space("A")
	if s.Space("A") != a {
		t.Error("Space not memoized")
	}
	if s.Space("B") == a {
		t.Error("distinct spaces share identity")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := newSystem(t, Config{})
	if s.Cluster.NodeCount() != 4 {
		t.Errorf("default nodes %d, want 4", s.Cluster.NodeCount())
	}
	s2 := newSystem(t, Config{Nodes: 2, DisableInference: true})
	if s2.Inference != nil {
		t.Error("inference not disabled")
	}
	if s2.Cluster.NodeCount() != 2 {
		t.Error("node count ignored")
	}
}

func TestExtraTemplates(t *testing.T) {
	s := newSystem(t, Config{ExtraTemplates: map[string]string{
		"Custom": "task Custom {A} {Out}\nstep S {A} {Out} {bdsyn -o Out A}\n",
	}})
	if _, err := s.ImportObject("/x", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(2))); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("t", "u")
	if _, err := s.Invoke(th, "Custom",
		map[string]string{"A": "/x"}, map[string]string{"Out": "o"}); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimerWired(t *testing.T) {
	s := newSystem(t, Config{ReclaimGrace: 0})
	ref, _ := s.ImportObject("junk", oct.TypeText, oct.Text("bytes"))
	s.Store.Hide(ref)
	st, err := s.Reclaimer.SweepObjects()
	if err != nil || st.Versions != 1 {
		t.Errorf("sweep %+v err %v", st, err)
	}
}

func TestBackgroundSweep(t *testing.T) {
	s := newSystem(t, Config{Nodes: 2, SweepEvery: 10, ReclaimGrace: 0})
	if _, err := s.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("t", "u")
	// Running a task advances virtual time past several sweep intervals;
	// its hidden intermediates get physically reclaimed in the background.
	if _, err := s.Invoke(th, "Structure_Synthesis",
		map[string]string{"Incell": "/spec", "Musa_Command": "/cmd"},
		map[string]string{"Outcell": "o", "Cell_Statistics": "st"}); err != nil {
		// Musa command missing: import and retry once.
		if _, err2 := s.ImportObject("/cmd", oct.TypeText, oct.Text("set d0 1\nsim\n")); err2 != nil {
			t.Fatal(err2)
		}
		if _, err := s.Invoke(th, "Structure_Synthesis",
			map[string]string{"Incell": "/spec", "Musa_Command": "/cmd"},
			map[string]string{"Outcell": "o", "Cell_Statistics": "st"}); err != nil {
			t.Fatal(err)
		}
	}
	// Hide an object and run another task: the background sweep reclaims it.
	ref, _ := s.ImportObject("junk", oct.TypeText, oct.Text("bytes"))
	s.Store.Hide(ref)
	if _, err := s.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "cell.logic#1@1"},
		map[string]string{"Outcell": "p"}); err != nil {
		// The intermediate name may differ; use the task output instead.
		if _, err := s.Invoke(th, "place-pads",
			map[string]string{"Incell": "o"},
			map[string]string{"Outcell": "padded"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Store.Get(ref); err == nil {
		t.Error("background sweep did not reclaim the hidden object")
	}
}
