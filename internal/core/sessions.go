package core

// Multi-session execution. The LWT model makes independent design threads
// interact only through single-assignment versions and SDS notification
// (Ch. 3), so design sessions are embarrassingly parallel by construction:
// RunSessions exploits that, running N sessions concurrently against the
// shared object store, attribute database, SDS spaces, and metrics
// registry, while each session keeps its own virtual-time world — a
// private sprite cluster, task manager, activity manager, and tracer.
//
// Determinism: a session's virtual timeline is driven only by its own
// cluster, so per-session stats contributions and trace events are
// independent of how sessions interleave on the host. The shared metrics
// registry accumulates order-independent sums, and per-session traces are
// merged into the system tracer by virtual time with the session index as
// tie-break. As long as sessions write disjoint object names (the LWT
// premise), the final store version map is also interleaving-independent.
// Store-level trace events (version put) are suppressed during a
// multi-session run — they would record host scheduling order — and
// restored afterwards.

import (
	"fmt"
	"sort"
	"sync"

	"papyrus/internal/activity"
	"papyrus/internal/fault"
	"papyrus/internal/history"
	"papyrus/internal/obs"
	"papyrus/internal/sprite"
	"papyrus/internal/task"
	"papyrus/internal/templates"
)

// SessionSpec describes one independent design session.
type SessionSpec struct {
	// Name labels the session in results and merged trace events.
	Name string
	// Run drives the session: invoke tasks, contribute to spaces. It runs
	// on its own goroutine; everything reachable from the Session is safe
	// to use there.
	Run func(s *Session) error
}

// Session is the per-thread slice of a System handed to SessionSpec.Run:
// a private cluster/task/activity stack over the shared store and spaces.
type Session struct {
	// Name and Index identify the session (Index is its position in the
	// RunSessions spec slice).
	Name  string
	Index int
	// System is the shared environment: Store, Suite, Attrs, Metrics and
	// Space(id) are safe to use concurrently from any session.
	System *System
	// Cluster is the session's private workstation network; its virtual
	// clock is independent of every other session's.
	Cluster *sprite.Cluster
	// Tasks and Activity are the session's private managers.
	Tasks    *task.Manager
	Activity *activity.Manager
	// Fault is the session's private injector, armed against the
	// session cluster when the system config carries a fault plan; its
	// seed folds in the session index so concurrent sessions draw
	// independent (but individually reproducible) fault sequences.
	Fault *fault.Injector
	// Trace is the session's private tracer; nil when the system has
	// tracing off. RunSessions merges it into System.Trace at the end.
	Trace *obs.Tracer
}

// Invoke instantiates a task template in a thread of this session.
func (s *Session) Invoke(t *activity.Thread, taskName string, inputs, outputs map[string]string, opts ...activity.InvokeOption) (*history.Record, error) {
	return s.Activity.InvokeTask(t, taskName, inputs, outputs, opts...)
}

// SessionResult reports one session's outcome.
type SessionResult struct {
	Name string
	// Err is the session's Run error, or a construction error.
	Err error
	// Makespan is the session's final virtual time. Aggregate step counts
	// live in the shared metrics registry (task.step.complete etc.).
	Makespan int64
}

// sessionThreadStride spaces the activity-thread ID ranges of concurrent
// sessions; a session creating more threads than this would collide with
// its neighbor (far beyond any realistic session).
const sessionThreadStride = 1 << 20

// RunSessions executes the given sessions concurrently, at most
// Config.Workers at a time (task.DefaultWorkers when unset). Each session
// gets a private cluster (same node count/speeds/migration delay as the
// system), task manager, activity manager (with a disjoint thread-ID
// range), and tracer; all sessions share the system's store, CAD suite,
// attribute database, SDS spaces, inference engine (serialized), and
// metrics registry. A configured fault plan arms against every session
// cluster too (seed folded with the session index), so multi-session
// workloads feel the same failure classes the root timeline does;
// background sweeps stay on the root system — they are driven by the
// root cluster's timeline and do not apply to session clusters.
//
// It returns one result per spec, in spec order, and a non-nil error if
// any session failed.
func (sys *System) RunSessions(specs []SessionSpec) ([]SessionResult, error) {
	results := make([]SessionResult, len(specs))
	if len(specs) == 0 {
		return results, nil
	}
	workers := sys.cfg.Workers
	if workers <= 0 {
		workers = task.DefaultWorkers
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	restoreTraces := sys.SuppressSharedTraces()
	defer restoreTraces()

	tracers := make([]*obs.Tracer, len(specs))
	sessions := make([]*Session, len(specs))
	for i, spec := range specs {
		s, err := sys.newSession(i, spec)
		if err != nil {
			results[i] = SessionResult{Name: spec.Name, Err: err}
			continue
		}
		sessions[i] = s
		tracers[i] = s.Trace
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range specs {
		if sessions[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := sessions[i]
			err := specs[i].Run(s)
			results[i] = SessionResult{
				Name:     s.Name,
				Err:      err,
				Makespan: s.Cluster.Now(),
			}
		}(i)
	}
	wg.Wait()

	sys.mergeTraces(specs, tracers)

	var firstErr error
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = res.Err
			}
		}
	}
	if firstErr != nil {
		return results, fmt.Errorf("core: %d of %d sessions failed: %w", failed, len(specs), firstErr)
	}
	return results, nil
}

// SuppressSharedTraces detaches the tracer from the shared store, SDS
// spaces, and WAL — events there would record host scheduling order when
// several sessions race — and returns the restore function. RunSessions
// does this around every drive; external session drivers (the workload
// round runner, the served front-end's tests) must do the same when they
// run OpenSession stacks concurrently with tracing on. Registry counters
// are order-independent sums and stay attached throughout.
func (sys *System) SuppressSharedTraces() (restore func()) {
	sys.Store.SetObservability(sys.Metrics, nil, sys.Cluster.Now)
	sys.spacesMu.Lock()
	for _, sp := range sys.spaces {
		sp.SetObservability(sys.Metrics, nil, sys.Cluster.Now)
	}
	sys.spacesMu.Unlock()
	if sys.WAL != nil {
		sys.WAL.SetTracer(nil)
	}
	return func() {
		sys.Store.SetObservability(sys.Metrics, sys.Trace, sys.Cluster.Now)
		sys.spacesMu.Lock()
		for _, sp := range sys.spaces {
			sp.SetObservability(sys.Metrics, sys.Trace, sys.Cluster.Now)
		}
		sys.spacesMu.Unlock()
		if sys.WAL != nil {
			sys.WAL.SetTracer(sys.Trace)
		}
	}
}

// OpenSession builds one long-lived session outside a RunSessions drive:
// the same private cluster/task/activity stack over the shared store, with
// the same disjoint thread-ID base scheme, but driven incrementally by the
// caller instead of a SessionSpec.Run callback. The served front-end
// (internal/server) opens one per wire session, so every tenant's view is
// a faithful projection of the one deterministic engine. Indexes must be
// unique among concurrently open sessions of one System; reusing a closed
// session's index is safe as long as its threads are no longer driven.
func (sys *System) OpenSession(index int, name string) (*Session, error) {
	return sys.newSession(index, SessionSpec{Name: name})
}

// newSession builds one session's private stack over the shared System.
func (sys *System) newSession(index int, spec SessionSpec) (*Session, error) {
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("session%d", index)
	}
	var tracer *obs.Tracer
	if sys.Trace != nil {
		tracer = obs.NewTracer()
	}
	cluster, err := sprite.NewCluster(sprite.Config{
		Nodes:          sys.cfg.Nodes,
		MigrationDelay: sys.cfg.MigrationDelay,
		Speeds:         sys.cfg.NodeSpeeds,
		Metrics:        sys.Metrics,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if sys.cfg.Fault != nil {
		// Each session draws its own fault sequence: the plan is shared
		// but the seed folds in the session index, so session i's faults
		// are reproducible across runs and worker counts yet independent
		// of its neighbors'. Crash/stall schedules arm against the
		// session's private cluster timeline.
		plan := *sys.cfg.Fault
		plan.Seed = sessionFaultSeed(plan.Seed, index)
		inj = fault.New(plan)
		inj.SetObservability(sys.Metrics, tracer, cluster.Now)
		inj.Arm(cluster)
	}
	taskCfg := task.Config{
		Suite:          sys.Suite,
		Store:          sys.Store,
		Cluster:        cluster,
		Templates:      templates.Source(sys.cfg.ExtraTemplates),
		AttrDB:         sys.Attrs,
		MaxRestarts:    sys.cfg.MaxRestarts,
		ReMigrateEvery: sys.cfg.ReMigrateEvery,
		Retry:          sys.cfg.Retry,
		Workers:        sys.cfg.Workers,
		StepLatency:    sys.cfg.StepLatency,
		Metrics:        sys.Metrics,
		Tracer:         tracer,
		// Sessions share one memo cache: it is concurrency-safe, holds no
		// observability sinks (hit events go to the session tracer), and a
		// result computed by one session serves every other.
		Memo: sys.Memo,
		// Disjoint instance-ID ranges (same scheme as the thread bases):
		// intermediate names carry the instance suffix, and sessions share
		// the store, so colliding suffixes would make shared-name version
		// order a race.
		InstanceBase: (index + 1) * sessionThreadStride,
	}
	if inj != nil {
		taskCfg.FaultStep = inj.FailStep
	}
	if sys.Inference != nil {
		taskCfg.OnStep = func(rec history.StepRecord) {
			sys.infMu.Lock()
			defer sys.infMu.Unlock()
			sys.Inference.ObserveStep(rec)
		}
	}
	tasks, err := task.New(taskCfg)
	if err != nil {
		return nil, err
	}
	act := activity.NewManager(sys.Store, tasks)
	act.SetThreadBase((index + 1) * sessionThreadStride)
	act.SetObservability(sys.Metrics, tracer, cluster.Now)
	// Sessions share the system's write-ahead log; the disjoint thread-ID
	// bases keep their records in disjoint ranges, so a recovered root
	// manager replays every session's threads without collision.
	act.AttachWAL(sys.WAL)
	return &Session{
		Name:     name,
		Index:    index,
		System:   sys,
		Cluster:  cluster,
		Tasks:    tasks,
		Activity: act,
		Fault:    inj,
		Trace:    tracer,
	}, nil
}

// sessionFaultSeed folds a session index into a fault-plan seed
// (splitmix64 finalizer), keeping per-session fault sequences decorrelated
// without any shared RNG state.
func sessionFaultSeed(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// mergeTraces folds per-session trace events into the system tracer,
// ordered by virtual time with (session index, per-session emission
// order) as tie-breaks — a deterministic interleaving regardless of how
// the sessions actually raced. Each event is tagged with its session name.
func (sys *System) mergeTraces(specs []SessionSpec, tracers []*obs.Tracer) {
	if sys.Trace == nil {
		return
	}
	type tagged struct {
		ev   obs.Event
		sess int
		idx  int
	}
	var all []tagged
	for i, tr := range tracers {
		if tr == nil {
			continue
		}
		for j, ev := range tr.Events() {
			all = append(all, tagged{ev: ev, sess: i, idx: j})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.VT != all[b].ev.VT {
			return all[a].ev.VT < all[b].ev.VT
		}
		if all[a].sess != all[b].sess {
			return all[a].sess < all[b].sess
		}
		return all[a].idx < all[b].idx
	})
	for _, t := range all {
		ev := t.ev
		name := specs[t.sess].Name
		if name == "" {
			name = fmt.Sprintf("session%d", t.sess)
		}
		args := make(map[string]string, len(ev.Args)+1)
		for k, v := range ev.Args {
			args[k] = v
		}
		args["session"] = name
		ev.Args = args
		sys.Trace.Emit(ev)
	}
}
