package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"papyrus/internal/cad/logic"
	"papyrus/internal/fault"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/task"
)

const sessFanout = `task Fanout4 {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {misII -o O1 A}
step S2 {B} {O2} {misII -o O2 B}
step S3 {C} {O3} {misII -o O3 C}
step S4 {D} {O4} {misII -o O4 D}
`

// fanoutSpecs builds n sessions, each seeding its own inputs and running
// the fan-out task into a disjoint output namespace (the LWT premise).
func fanoutSpecs(t *testing.T, sys *System, n int) []SessionSpec {
	t.Helper()
	specs := make([]SessionSpec, n)
	for i := 0; i < n; i++ {
		i := i
		specs[i] = SessionSpec{
			Name: fmt.Sprintf("designer%d", i),
			Run: func(s *Session) error {
				inputs := map[string]string{}
				for _, formal := range []string{"A", "B", "C", "D"} {
					name := fmt.Sprintf("/s%d/%s", i, formal)
					if _, err := sys.ImportObject(name, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
						return err
					}
					inputs[formal] = name
				}
				outputs := map[string]string{}
				for j := 1; j <= 4; j++ {
					outputs[fmt.Sprintf("O%d", j)] = fmt.Sprintf("/s%d/out%d", i, j)
				}
				th := s.Activity.NewThread(s.Name, "test")
				rec, err := s.Invoke(th, "Fanout4", inputs, outputs)
				if err != nil {
					return err
				}
				if len(rec.Steps) != 4 {
					return fmt.Errorf("session %d: %d steps, want 4", i, len(rec.Steps))
				}
				return nil
			},
		}
	}
	return specs
}

// runFanoutSessions executes n fan-out sessions with the given worker
// count on a fresh system and returns the deterministic exports.
func runFanoutSessions(t *testing.T, n, workers int) (stats, versions, trace string) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	sys := newSystem(t, Config{
		Workers:          workers,
		DisableInference: true,
		Metrics:          reg,
		Trace:            tracer,
		ExtraTemplates:   map[string]string{"Fanout4": sessFanout},
	})
	results, err := sys.RunSessions(fanoutSpecs(t, sys, n))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("%d results, want %d", len(results), n)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("session %s: %v", res.Name, res.Err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("session %s: makespan %d", res.Name, res.Makespan)
		}
	}
	var regBuf, traceBuf bytes.Buffer
	if err := reg.WriteText(&regBuf); err != nil {
		t.Fatal(err)
	}
	if err := tracer.WriteChromeTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return regBuf.String(), sys.Store.VersionMapText(), traceBuf.String()
}

// TestRunSessionsDeterministicExports is the multi-session half of the
// determinism contract: stats, the store version map, and the merged trace
// are byte-identical however many sessions actually overlap.
func TestRunSessionsDeterministicExports(t *testing.T) {
	const n = 8
	baseStats, baseVersions, baseTrace := runFanoutSessions(t, n, 1)
	for _, workers := range []int{4, 8} {
		stats, versions, trace := runFanoutSessions(t, n, workers)
		if stats != baseStats {
			t.Errorf("workers=%d: stats diverge:\n%s\nvs\n%s", workers, stats, baseStats)
		}
		if versions != baseVersions {
			t.Errorf("workers=%d: version map diverges:\n%s\nvs\n%s", workers, versions, baseVersions)
		}
		if trace != baseTrace {
			t.Errorf("workers=%d: merged trace diverges", workers)
		}
	}
	// And repeat-run determinism at full concurrency.
	stats, versions, trace := runFanoutSessions(t, n, 8)
	if stats != baseStats || versions != baseVersions || trace != baseTrace {
		t.Error("repeated concurrent run diverges from the first")
	}
}

// TestRunSessionsTraceTagged checks the merge: every session event lands
// in the system tracer carrying its session name.
func TestRunSessionsTraceTagged(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	sys := newSystem(t, Config{
		Workers: 4, DisableInference: true, Metrics: reg, Trace: tracer,
		ExtraTemplates: map[string]string{"Fanout4": sessFanout},
	})
	if _, err := sys.RunSessions(fanoutSpecs(t, sys, 3)); err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("no merged events")
	}
	bySession := map[string]int{}
	lastVT := int64(-1)
	for _, ev := range events {
		name := ev.Args["session"]
		if name == "" {
			t.Fatalf("merged event %s/%s has no session tag", ev.Type, ev.Name)
		}
		bySession[name]++
		if ev.VT < lastVT {
			t.Fatalf("merged events not sorted by virtual time: %d after %d", ev.VT, lastVT)
		}
		lastVT = ev.VT
	}
	for i := 0; i < 3; i++ {
		if bySession[fmt.Sprintf("designer%d", i)] == 0 {
			t.Errorf("no events for designer%d: %v", i, bySession)
		}
	}
}

// TestRunSessionsThreadIDsDisjoint: concurrent sessions allocate activity
// threads from disjoint ID ranges.
func TestRunSessionsThreadIDsDisjoint(t *testing.T) {
	sys := newSystem(t, Config{Workers: 4, DisableInference: true})
	var mu sync.Mutex
	ids := map[int][]int{}
	specs := make([]SessionSpec, 4)
	for i := range specs {
		i := i
		specs[i] = SessionSpec{Run: func(s *Session) error {
			for k := 0; k < 3; k++ {
				th := s.Activity.NewThread(fmt.Sprintf("t%d", k), "u")
				mu.Lock()
				ids[i] = append(ids[i], th.ID())
				mu.Unlock()
			}
			return nil
		}}
	}
	if _, err := sys.RunSessions(specs); err != nil {
		t.Fatal(err)
	}
	var all []int
	for i, list := range ids {
		if len(list) != 3 {
			t.Fatalf("session %d allocated %d threads", i, len(list))
		}
		all = append(all, list...)
	}
	sort.Ints(all)
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate thread ID %d across sessions", all[i])
		}
	}
}

// TestRunSessionsErrorAggregation: failures are reported per session, in
// spec order, and surfaced as one aggregate error.
func TestRunSessionsErrorAggregation(t *testing.T) {
	sys := newSystem(t, Config{Workers: 2, DisableInference: true})
	boom := errors.New("boom")
	specs := []SessionSpec{
		{Name: "good", Run: func(s *Session) error { return nil }},
		{Name: "bad", Run: func(s *Session) error { return boom }},
		{Name: "alsogood", Run: func(s *Session) error { return nil }},
	}
	results, err := sys.RunSessions(specs)
	if err == nil {
		t.Fatal("no aggregate error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate error %v does not wrap the session error", err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Name != "good" || results[0].Err != nil {
		t.Errorf("results[0] = %+v", results[0])
	}
	if results[1].Name != "bad" || results[1].Err == nil {
		t.Errorf("results[1] = %+v", results[1])
	}
	if results[2].Name != "alsogood" || results[2].Err != nil {
		t.Errorf("results[2] = %+v", results[2])
	}
}

// TestRunSessionsRestoresStoreTracer: store events are suppressed during a
// multi-session run but flow again afterwards.
func TestRunSessionsRestoresStoreTracer(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	sys := newSystem(t, Config{
		Workers: 2, DisableInference: true, Metrics: reg, Trace: tracer,
	})
	if _, err := sys.RunSessions([]SessionSpec{{Run: func(s *Session) error { return nil }}}); err != nil {
		t.Fatal(err)
	}
	before := tracer.Len()
	if _, err := sys.ImportObject("/after", oct.TypeText, oct.Text("x")); err != nil {
		t.Fatal(err)
	}
	if tracer.Len() <= before {
		t.Error("store tracer not restored after RunSessions")
	}
}

// TestOpenSessionDisjointInstanceNames drives two incrementally-opened
// sessions through a template with a §4.3.4 intermediate. The sessions
// share the store, so without disjoint per-session instance-ID bases
// both would name their first intermediate "m1#1" and the shared name
// would accumulate two racing versions; with the bases, every store name
// must end up single-assignment.
func TestOpenSessionDisjointInstanceNames(t *testing.T) {
	const chain = `task Chain2 {A} {Out}
step {1 S1} {A} {m1} {misII -o m1 A}
step {2 S2} {m1} {Out} {misII -o Out m1}
`
	sys := newSystem(t, Config{
		DisableInference: true,
		ExtraTemplates:   map[string]string{"Chain2": chain},
	})
	for i := 0; i < 2; i++ {
		s, err := sys.OpenSession(i, fmt.Sprintf("designer%d", i))
		if err != nil {
			t.Fatal(err)
		}
		in := fmt.Sprintf("/open%d/in", i)
		if _, err := sys.ImportObject(in, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
			t.Fatal(err)
		}
		th := s.Activity.NewThread(s.Name, "test")
		rec, err := s.Invoke(th, "Chain2",
			map[string]string{"A": in},
			map[string]string{"Out": fmt.Sprintf("/open%d/out", i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Steps) != 2 {
			t.Fatalf("session %d: %d steps, want 2", i, len(rec.Steps))
		}
	}
	sawIntermediate := false
	for _, name := range sys.Store.Names() {
		if n := len(sys.Store.Versions(name)); n != 1 {
			t.Errorf("%s: %d versions, want 1 (instance-ID collision)", name, n)
		}
		if strings.Contains(name, "#") {
			sawIntermediate = true
		}
	}
	if !sawIntermediate {
		t.Error("no intermediate names in the store; the collision check tested nothing")
	}
}

// TestSessionFaultSeedDecorrelated: the folded seed is deterministic per
// (seed, index) and distinct across indexes, so concurrent sessions draw
// independent but reproducible fault sequences.
func TestSessionFaultSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 64; i++ {
		s := sessionFaultSeed(7, i)
		if s != sessionFaultSeed(7, i) {
			t.Fatalf("index %d: seed not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("index %d: folded seed collides", i)
		}
		seen[s] = true
	}
	if sessionFaultSeed(7, 0) == sessionFaultSeed(8, 0) {
		t.Error("different plan seeds fold to the same session seed")
	}
}

// TestRunSessionsWithFaultPlan: a configured fault plan arms against
// every session's private cluster with a per-session folded seed, and
// the retry policy still drives all sessions to completion.
func TestRunSessionsWithFaultPlan(t *testing.T) {
	reg := obs.NewRegistry()
	sys := newSystem(t, Config{
		Workers:          2,
		DisableInference: true,
		Metrics:          reg,
		ExtraTemplates:   map[string]string{"Fanout4": sessFanout},
		Fault: &fault.Plan{
			Seed:     7,
			StepFail: map[string]fault.StepFail{"*": {Prob: 0.5, MaxFails: 2}},
		},
		Retry: task.RetryPolicy{MaxAttempts: 4, BackoffBase: 8},
	})
	results, err := sys.RunSessions(fanoutSpecs(t, sys, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("session %s: %v", res.Name, res.Err)
		}
	}
	if reg.Counter("fault.injected.stepfail") == 0 {
		t.Error("fault plan armed but no step failures injected")
	}
	if reg.Counter("task.step.complete") != 12 {
		t.Errorf("steps = %d, want 12", reg.Counter("task.step.complete"))
	}
}
