package core

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"papyrus/internal/cad/logic"
	"papyrus/internal/oct"
)

// durableWorkload drives a small design session: two task invocations in
// one thread, then a rework move back to the first record.
func durableWorkload(t *testing.T, s *System) {
	t.Helper()
	if _, err := s.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("Shifter", "chiueh")
	rec, err := s.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/spec"},
		map[string]string{"Outlogic": "sh.logic"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla"}); err != nil {
		t.Fatal(err)
	}
	if err := th.MoveCursor(rec); err != nil {
		t.Fatal(err)
	}
}

// compareRecovered asserts the recovered system's store and threads match
// the original's.
func compareRecovered(t *testing.T, want, got *System) {
	t.Helper()
	if w, g := want.Store.VersionMapText(), got.Store.VersionMapText(); w != g {
		t.Errorf("recovered version map differs:\n--- want ---\n%s--- got ---\n%s", w, g)
	}
	wantThreads, gotThreads := want.Activity.Threads(), got.Activity.Threads()
	if len(wantThreads) != len(gotThreads) {
		t.Fatalf("recovered %d threads, want %d", len(gotThreads), len(wantThreads))
	}
	for i, w := range wantThreads {
		g := gotThreads[i]
		if g.ID() != w.ID() || g.Name() != w.Name() || g.Owner() != w.Owner() {
			t.Errorf("thread %d: identity %d/%q/%q, want %d/%q/%q",
				i, g.ID(), g.Name(), g.Owner(), w.ID(), w.Name(), w.Owner())
		}
		if g.Stream().Len() != w.Stream().Len() {
			t.Errorf("thread %q: stream len %d, want %d", w.Name(), g.Stream().Len(), w.Stream().Len())
		}
		wc, gc := 0, 0
		if w.Cursor() != nil {
			wc = w.Cursor().ID
		}
		if g.Cursor() != nil {
			gc = g.Cursor().ID
		}
		if wc != gc {
			t.Errorf("thread %q: cursor %d, want %d", w.Name(), gc, wc)
		}
	}
}

// TestRecoverFromLogAlone: with no snapshot ever taken, the WAL alone
// rebuilds the store, the threads, the cursor, and the inferred metadata;
// the recovered system keeps working on the same log.
func TestRecoverFromLogAlone(t *testing.T) {
	cfg := Config{Nodes: 2, Durability: &DurabilityConfig{Dir: t.TempDir()}}
	s := newSystem(t, cfg)
	durableWorkload(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, stats, err := Recover(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 {
		t.Fatal("recovery replayed no records")
	}
	compareRecovered(t, s, r)

	// Inference was rebuilt from the recovered history.
	ref, err := r.Activity.Threads()[0].ResolveInput("sh.logic")
	if err != nil {
		t.Fatal(err)
	}
	if typ, ok := r.Inference.TypeOf(ref); !ok || typ != oct.TypeLogic {
		t.Errorf("recovered inference type %s ok=%v", typ, ok)
	}

	// The recovered session continues from the reworked cursor, appending
	// to the same log: sh.logic is in the cursor's data scope.
	rt := r.Activity.Threads()[0]
	if _, err := r.Invoke(rt, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla2"}); err != nil {
		t.Fatalf("continuing recovered session: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSnapshotPlusTail: SaveSession checkpoints (and compacts) the
// log; recovery restores the snapshot and replays only the delta since.
// Recovering a checkpointed log without its snapshot must fail the
// fingerprint check rather than fabricate a diverged history.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	snapDir := t.TempDir()
	cfg := Config{Nodes: 2, Durability: &DurabilityConfig{Dir: t.TempDir()}}
	s := newSystem(t, cfg)
	durableWorkload(t, s)
	if err := s.SaveSession(snapDir); err != nil {
		t.Fatal(err)
	}
	if n := s.WAL.SegmentCount(); n != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", n)
	}
	// Post-checkpoint delta: another invocation from the reworked cursor.
	th := s.Activity.Threads()[0]
	if _, err := s.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, _, err := Recover(cfg, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	compareRecovered(t, s, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Recover(cfg, ""); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("recovery without the snapshot = %v, want fingerprint mismatch", err)
	}
}

// TestRecoverTornLogTail: chopping bytes off the live segment must not
// stop recovery — the torn tail is truncated and the prefix recovers.
func TestRecoverTornLogTail(t *testing.T) {
	cfg := Config{Nodes: 2, Durability: &DurabilityConfig{Dir: t.TempDir()}}
	s := newSystem(t, cfg)
	durableWorkload(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(cfg.Durability.Dir, "wal-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	sort.Strings(names)
	last := names[len(names)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	r, stats, err := Recover(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated == 0 {
		t.Error("expected truncated tail bytes to be reported")
	}
	// The recovered map is a prefix of the full run: every surviving
	// version existed, and per-name versions stay contiguous from 1.
	full := map[string]bool{}
	for _, line := range strings.Split(s.Store.VersionMapText(), "\n") {
		full[line] = true
	}
	for _, line := range strings.Split(r.Store.VersionMapText(), "\n") {
		if !full[line] {
			t.Errorf("recovered phantom line %q", line)
		}
	}
	for _, name := range r.Store.Names() {
		for v := 1; v <= r.Store.LatestVersion(name); v++ {
			if _, err := r.Store.Peek(oct.Ref{Name: name, Version: v}); err != nil {
				t.Errorf("version hole: %s@%d: %v", name, v, err)
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunSessionsDurableRecover: concurrent sessions share one log;
// recovery rebuilds every session's threads (disjoint ID ranges) and the
// shared store into a single root manager.
func TestRunSessionsDurableRecover(t *testing.T) {
	cfg := Config{
		Workers:          4,
		DisableInference: true,
		ExtraTemplates:   map[string]string{"Fanout4": sessFanout},
		Durability:       &DurabilityConfig{Dir: t.TempDir()},
	}
	sys := newSystem(t, cfg)
	if _, err := sys.RunSessions(fanoutSpecs(t, sys, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	r, _, err := Recover(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if w, g := sys.Store.VersionMapText(), r.Store.VersionMapText(); w != g {
		t.Errorf("recovered version map differs:\n--- want ---\n%s--- got ---\n%s", w, g)
	}
	threads := r.Activity.Threads()
	if len(threads) != 3 {
		t.Fatalf("recovered %d threads, want 3", len(threads))
	}
	for i, th := range threads {
		wantID := (i+1)*sessionThreadStride + 1
		if th.ID() != wantID {
			t.Errorf("thread %d: ID %d, want %d", i, th.ID(), wantID)
		}
		if th.Stream().Len() != 1 {
			t.Errorf("thread %d: stream len %d, want 1", i, th.Stream().Len())
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveRecoverKeepsThreadIDs: the session file carries thread IDs so a
// snapshot-restored thread answers to the IDs the log tail references.
func TestSaveRecoverKeepsThreadIDs(t *testing.T) {
	snapDir := t.TempDir()
	cfg := Config{Nodes: 1, Durability: &DurabilityConfig{Dir: t.TempDir()}}
	s := newSystem(t, cfg)
	a := s.NewThread("a", "u")
	b := s.NewThread("b", "u")
	s.Activity.DropThread(a)
	if err := s.SaveSession(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := Recover(cfg, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	threads := r.Activity.Threads()
	if len(threads) != 1 || threads[0].ID() != b.ID() {
		t.Fatalf("recovered threads %v, want one with ID %d", threads, b.ID())
	}
	// A fresh thread in the recovered manager must not reuse IDs.
	if id := r.NewThread("c", "u").ID(); id <= b.ID() {
		t.Errorf("new thread ID %d not past restored %d", id, b.ID())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
