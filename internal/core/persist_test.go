package core

import (
	"os"
	"testing"

	"papyrus/internal/cad/logic"
	"papyrus/internal/oct"
)

func TestSessionSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newSystem(t, Config{Nodes: 2})
	if _, err := s.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("Shifter", "chiueh")
	rec, err := s.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/spec"},
		map[string]string{"Outlogic": "sh.logic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Annotate(rec, "session checkpoint"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla"}); err != nil {
		t.Fatal(err)
	}

	if err := s.SaveSession(dir); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadSession(Config{Nodes: 2}, dir)
	if err != nil {
		t.Fatal(err)
	}
	threads := restored.Activity.Threads()
	if len(threads) != 1 {
		t.Fatalf("threads %d, want 1", len(threads))
	}
	rt := threads[0]
	if rt.Name() != "Shifter" || rt.Owner() != "chiueh" {
		t.Errorf("thread identity %q/%q", rt.Name(), rt.Owner())
	}
	if rt.Stream().Len() != th.Stream().Len() {
		t.Errorf("stream len %d, want %d", rt.Stream().Len(), th.Stream().Len())
	}
	// The cursor survived by record ID.
	if rt.Cursor() == nil || rt.Cursor().TaskName != "PLA-generation" {
		t.Errorf("cursor %+v", rt.Cursor())
	}
	// Annotations survived.
	if _, ok := rt.FindAnnotation("session checkpoint"); !ok {
		t.Error("annotation lost")
	}
	// The data scope resolves against the restored store.
	ref, err := rt.ResolveInput("sh.pla")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := restored.Store.Get(ref)
	if err != nil || obj.Type != oct.TypeLayout {
		t.Errorf("restored object %v %v", obj, err)
	}
	// Inference was reconstructed from the persisted history.
	if typ, ok := restored.Inference.TypeOf(ref); !ok || typ != oct.TypeLayout {
		t.Errorf("restored inference type %s ok=%v", typ, ok)
	}
	// Continue working in the restored session.
	if _, err := restored.Invoke(rt, "place-pads",
		map[string]string{"Incell": "sh.pla"},
		map[string]string{"Outcell": "sh.padded"}); err != nil {
		t.Fatalf("continuing restored session: %v", err)
	}
}

func TestLoadSessionMissingDir(t *testing.T) {
	if _, err := LoadSession(Config{}, t.TempDir()+"/nope"); err == nil {
		t.Error("missing session dir accepted")
	}
}

func TestLoadSessionCorruptThreads(t *testing.T) {
	dir := t.TempDir()
	s := newSystem(t, Config{Nodes: 1})
	if err := s.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the thread file.
	if err := os.WriteFile(dir+"/threads.json", []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSession(Config{Nodes: 1}, dir); err == nil {
		t.Error("corrupt thread file accepted")
	}
}
