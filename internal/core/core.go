// Package core is the public facade of the Papyrus reproduction: it wires
// the substrates (Tcl/TDL interpreter, simulated Sprite cluster, OCT-like
// object store, simulated CAD suite) to the two Papyrus subsystems — the
// task manager (Ch. 4) and the activity manager (Ch. 5) — with the
// metadata-inference engine (Ch. 6) observing every design step and the
// storage reclaimer (§5.4) bounding single-assignment growth.
//
// A System is one design environment (Fig 1.1/Fig 3.12): create threads,
// invoke tasks in them, rework the history, share through SDS spaces, and
// query inferred metadata. For a team, RunSessions drives N concurrent
// Sessions — each a private virtual-time cluster and task/activity stack
// over the shared store, with a disjoint thread-ID base — and OpenSession
// hands out the same isolation one session at a time; in the served
// architecture (cmd/papyrusd, docs/SERVER.md) each engine shard is one
// System and every wire session is one such Session.
package core

import (
	"fmt"
	"sync"
	"time"

	"papyrus/internal/activity"
	"papyrus/internal/attr"
	"papyrus/internal/baseline"
	"papyrus/internal/cad"
	"papyrus/internal/fault"
	"papyrus/internal/history"
	"papyrus/internal/infer"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/rebuild"
	"papyrus/internal/reclaim"
	"papyrus/internal/render"
	"papyrus/internal/sds"
	"papyrus/internal/sprite"
	"papyrus/internal/task"
	"papyrus/internal/templates"
	"papyrus/internal/wal"
)

// Config parameterizes a System.
type Config struct {
	// Nodes is the workstation count of the simulated network (>= 1;
	// default 4).
	Nodes int
	// MigrationDelay is the virtual cost of process migration (default 2).
	MigrationDelay int64
	// ReMigrateEvery enables the re-migration poll (§4.3.3); 0 disables.
	ReMigrateEvery int64
	// ExtraTemplates overlays additional TDL templates over the shipped
	// set, keyed by task name.
	ExtraTemplates map[string]string
	// ReclaimGrace is the invisibility age before physical reclamation.
	ReclaimGrace int64
	// MaxRestarts bounds programmable-abort restarts (default 3).
	MaxRestarts int
	// DisableInference skips metadata inference (for A/B experiments).
	DisableInference bool
	// StoreStripes overrides the object store's lock-stripe count
	// (rounded up to a power of two); 0 selects the oct default. The
	// striped-apply invariance matrix runs 1 vs 64 to prove the stripe
	// count is unobservable in stats, traces, and version maps.
	StoreStripes int
	// StoreBackend selects the object store's version-index backend:
	// "map" (default), "btree", or "lsm" (docs/STORAGE.md). The
	// differential harness and the E16 experiment prove the backends
	// observationally identical, so this is purely a performance choice.
	StoreBackend string
	// NodeSpeeds optionally sets per-node relative CPU speeds.
	NodeSpeeds []float64
	// SweepEvery runs the background object reclaimer at this virtual
	// interval (the abstract's "history-based object reclamation in the
	// background"); 0 disables the periodic sweep.
	SweepEvery int64
	// SweepBudget bounds index records scanned per background sweep
	// slice (docs/RECLAIM.md); <= 0 sweeps the whole store each time.
	SweepBudget int
	// Metrics receives counters and histograms from every subsystem
	// (nil = no metrics; zero instrumentation cost).
	Metrics *obs.Registry
	// Trace receives typed events stamped with cluster virtual time
	// (nil = no tracing).
	Trace *obs.Tracer
	// Fault optionally arms a deterministic fault-injection plan — node
	// crashes, transient step failures, migration stalls — against the
	// cluster and task manager (docs/FAULTS.md). Nil injects nothing.
	Fault *fault.Plan
	// Retry is the task manager's per-step retry policy for transient
	// failures; the zero value disables retries. Independent of
	// MaxRestarts (a retry never consumes a programmable-abort restart).
	Retry task.RetryPolicy
	// Workers sizes the concurrency of the engine: the task manager's
	// per-batch tool-body pool and the number of sessions RunSessions
	// executes at once. <= 0 selects task.DefaultWorkers. Exports stay
	// byte-identical at any value (EXPERIMENTS.md E11).
	Workers int
	// StepLatency adds a wall-clock sleep to every executed tool body,
	// modeling real CAD tool invocation overhead (process spawn, file
	// I/O). Virtual time is unaffected; throughput measurements use it.
	StepLatency time.Duration
	// Durability arms write-ahead logging: committed versions, thread
	// lifecycle events, and cursor moves are logged before acknowledgment,
	// and Recover rebuilds the environment after a crash
	// (docs/DURABILITY.md). Nil runs without a log.
	Durability *DurabilityConfig
	// Memo arms history-based redo avoidance: a content-addressed
	// step-result cache consulted before every step issue, so re-running
	// recorded work (the §3.3.3 rework loop) materializes cached output
	// versions instead of re-invoking tools (docs/CACHING.md). The cache
	// is shared by every session of a RunSessions drive and is rebuilt
	// from history on Recover; nil disables memoization.
	Memo *memo.Cache
}

// System is a complete Papyrus design environment.
type System struct {
	Suite     *cad.Suite
	Store     *oct.Store
	Cluster   *sprite.Cluster
	Attrs     *attr.DB
	Tasks     *task.Manager
	Activity  *activity.Manager
	Inference *infer.Engine
	Reclaimer *reclaim.Reclaimer
	// Fault is the armed fault injector; nil when Config.Fault was unset.
	Fault *fault.Injector
	// Metrics and Trace are the observability sinks shared by every
	// subsystem; nil when the Config left them unset.
	Metrics *obs.Registry
	Trace   *obs.Tracer
	// WAL is the shared write-ahead log; nil when Config.Durability was
	// unset. Close releases it.
	WAL *wal.Log
	// Memo is the armed step-result cache; nil when Config.Memo was unset.
	Memo *memo.Cache

	cfg Config

	spacesMu sync.Mutex
	spaces   map[string]*sds.Space

	// infMu serializes inference observations when several sessions
	// complete steps concurrently (RunSessions).
	infMu sync.Mutex
}

// New builds and wires a System.
func New(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.MigrationDelay == 0 {
		cfg.MigrationDelay = 2
	}
	cluster, err := sprite.NewCluster(sprite.Config{
		Nodes:          cfg.Nodes,
		MigrationDelay: cfg.MigrationDelay,
		Speeds:         cfg.NodeSpeeds,
		Metrics:        cfg.Metrics,
		Tracer:         cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	store, err := oct.NewStoreWithOptions(oct.Options{
		Stripes: cfg.StoreStripes,
		Backend: oct.Backend(cfg.StoreBackend),
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		Suite:   cad.NewSuite(),
		Store:   store,
		Cluster: cluster,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
		cfg:     cfg,
		spaces:  make(map[string]*sds.Space),
	}
	s.Store.SetObservability(cfg.Metrics, cfg.Trace, cluster.Now)
	s.Attrs = attr.New(cad.Measure)
	if !cfg.DisableInference {
		s.Inference = infer.NewEngine(s.Suite, s.Store, s.Attrs)
	}
	taskCfg := task.Config{
		Suite:          s.Suite,
		Store:          s.Store,
		Cluster:        cluster,
		Templates:      templates.Source(cfg.ExtraTemplates),
		AttrDB:         s.Attrs,
		MaxRestarts:    cfg.MaxRestarts,
		ReMigrateEvery: cfg.ReMigrateEvery,
		Retry:          cfg.Retry,
		Workers:        cfg.Workers,
		StepLatency:    cfg.StepLatency,
		Metrics:        cfg.Metrics,
		Tracer:         cfg.Trace,
		Memo:           cfg.Memo,
	}
	s.Memo = cfg.Memo
	if cfg.Fault != nil {
		s.Fault = fault.New(*cfg.Fault)
		s.Fault.SetObservability(cfg.Metrics, cfg.Trace, cluster.Now)
		s.Fault.Arm(cluster)
		taskCfg.FaultStep = s.Fault.FailStep
	}
	if s.Inference != nil {
		taskCfg.OnStep = s.Inference.ObserveStep
	}
	s.Tasks, err = task.New(taskCfg)
	if err != nil {
		return nil, err
	}
	s.Activity = activity.NewManager(s.Store, s.Tasks)
	s.Activity.SetObservability(cfg.Metrics, cfg.Trace, cluster.Now)
	s.Reclaimer = reclaim.New(s.Store, reclaim.Policy{
		Grace:       cfg.ReclaimGrace,
		SweepBudget: cfg.SweepBudget,
		Memo:        cfg.Memo,
	})
	if cfg.SweepEvery > 0 {
		// The background reclaimer of §3.3.1/§5.4: runs as virtual time
		// advances, physically deleting versions hidden past the grace
		// period. Sweep errors only occur on archiver failures, which the
		// default (delete) policy cannot produce.
		cluster.Every(cfg.SweepEvery, func(now int64) {
			_, _ = s.Reclaimer.SweepObjects()
		})
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

// ImportObject checks an external object into the design database (the
// seed specifications a design session starts from).
func (s *System) ImportObject(name string, typ oct.Type, data oct.Value) (oct.Ref, error) {
	obj, err := s.Store.Put(name, typ, data, "import")
	if err != nil {
		return oct.Ref{}, err
	}
	return oct.Ref{Name: obj.Name, Version: obj.Version}, nil
}

// NewThread creates a design thread.
func (s *System) NewThread(name, owner string) *activity.Thread {
	return s.Activity.NewThread(name, owner)
}

// Invoke instantiates a task template in a thread. Input names use the
// three user forms (§5.2); outputs are plain names.
func (s *System) Invoke(t *activity.Thread, taskName string, inputs, outputs map[string]string, opts ...activity.InvokeOption) (*history.Record, error) {
	return s.Activity.InvokeTask(t, taskName, inputs, outputs, opts...)
}

// Space returns (creating on demand) a synchronization data space. Safe
// for concurrent use; concurrent sessions share the spaces they name.
func (s *System) Space(id string) *sds.Space {
	s.spacesMu.Lock()
	defer s.spacesMu.Unlock()
	sp, ok := s.spaces[id]
	if !ok {
		sp = sds.New(id, s.Store)
		sp.SetObservability(s.Metrics, s.Trace, s.Cluster.Now)
		s.spaces[id] = sp
	}
	return sp
}

// RenderThread renders a thread's control stream (the Fig 5.1 browser).
func (s *System) RenderThread(t *activity.Thread) string {
	return render.ControlStream(t.Stream(), t.Cursor())
}

// RenderScope renders the thread's current data scope (Fig 5.4).
func (s *System) RenderScope(t *activity.Thread) string {
	title := "(initial)"
	if c := t.Cursor(); c != nil {
		title = fmt.Sprintf("%s @ %d", c.TaskName, c.Time)
	}
	return render.DataScope(title, t.DataScope())
}

// Features reports Papyrus's Table I row, introspected from the wired
// subsystems rather than asserted.
func (s *System) Features() baseline.Features {
	return baseline.Features{
		ToolEncapsulation:       s.Suite != nil,                          // TDL-encapsulated tools
		ToolNavigation:          s.Tasks != nil,                          // task templates / navigation
		DesignExploration:       s.Activity != nil,                       // rework mechanism
		DataEvolution:           s.Inference != nil || s.Activity != nil, // history records + ADG
		ContextManagement:       s.Activity != nil,                       // threads as contexts
		CooperativeWork:         true,                                    // SDS + import (Space)
		DistributedArchitecture: s.Cluster != nil,                        // sprite cluster + migration
	}
}

// OutOfDate reports whether a derived object's transitive sources have
// newer versions than its recorded derivation used (§1.4's Make-style
// dependency knowledge, computed from the inferred ADG).
func (s *System) OutOfDate(target oct.Ref) (bool, error) {
	if s.Inference == nil {
		return false, fmt.Errorf("core: rebuild support requires the inference engine")
	}
	return rebuild.New(s.Suite, s.Store, s.Inference.Graph()).OutOfDate(target)
}

// InferenceResult is one InferenceQuery answer; the field matching the
// op is set.
type InferenceResult struct {
	// Type is the inferred object type (op "type").
	Type oct.Type
	// Refs is the lineage chain or equivalence class (ops "lineage",
	// "equivalence").
	Refs []oct.Ref
	// Relationships lists the ADG edges touching the object (op
	// "relationships").
	Relationships []infer.Relationship
	// OutOfDate reports staleness against the recorded derivation (op
	// "outofdate").
	OutOfDate bool
}

// InferenceQuery is the Ch. 6 read-side query surface (op = type |
// lineage | equivalence | relationships | outofdate) used by the served
// query endpoint and agentic workload designers. It takes the same mutex
// that serializes concurrent session step observations (sessions.go), so
// live sessions can query the ADG while others are still executing steps
// without racing the engine's internal maps.
func (s *System) InferenceQuery(op string, ref oct.Ref) (InferenceResult, error) {
	var res InferenceResult
	if s.Inference == nil {
		return res, fmt.Errorf("core: %s queries require the inference engine", op)
	}
	s.infMu.Lock()
	defer s.infMu.Unlock()
	switch op {
	case "type":
		t, ok := s.Inference.TypeOf(ref)
		if !ok {
			return res, fmt.Errorf("core: no inferred type for %s", ref)
		}
		res.Type = t
	case "lineage":
		res.Refs = s.Inference.Lineage(ref)
	case "equivalence":
		res.Refs = s.Inference.EquivalenceClass(ref)
	case "relationships":
		res.Relationships = s.Inference.Relationships(ref)
	case "outofdate":
		stale, err := rebuild.New(s.Suite, s.Store, s.Inference.Graph()).OutOfDate(ref)
		if err != nil {
			return res, err
		}
		res.OutOfDate = stale
	default:
		return res, fmt.Errorf("core: unknown query op %q (want type|lineage|equivalence|relationships|outofdate)", op)
	}
	return res, nil
}

// Rebuild replays a derived object's recorded derivation history against
// the latest source versions, producing a new version of the target.
func (s *System) Rebuild(target oct.Ref) (oct.Ref, error) {
	if s.Inference == nil {
		return oct.Ref{}, fmt.Errorf("core: rebuild support requires the inference engine")
	}
	return rebuild.New(s.Suite, s.Store, s.Inference.Graph()).Rebuild(target)
}

// TableI regenerates the dissertation's Table I: the literature rows plus
// rows introspected from the running implementations (the two baselines
// and Papyrus itself).
func (s *System) TableI() []baseline.System {
	rows := baseline.LiteratureRows()
	pf := baseline.NewPowerFrame(s.Suite, s.Store)
	vov := baseline.NewVOV(s.Suite, s.Store)
	// Replace the transcribed rows for systems we actually implement with
	// the introspected capabilities, marked Implemented.
	for i := range rows {
		switch rows[i].Name {
		case "Powerframe":
			rows[i] = baseline.System{Name: "Powerframe", Implemented: true, F: pf.Features()}
		case "VOV":
			rows[i] = baseline.System{Name: "VOV", Implemented: true, F: vov.Features()}
		}
	}
	rows = append(rows, baseline.System{Name: "Papyrus", Implemented: true, F: s.Features()})
	return rows
}
