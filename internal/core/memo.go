package core

// Memoization wiring. The step-result cache (internal/memo) is pure
// derived data: its keys and payloads are functions of the design history
// and the store's immutable versions, so it keeps no write-ahead log of
// its own. After a crash, Recover rebuilds it by re-keying every cleanly
// completed step of every recovered thread — WarmMemo below — which makes
// "crash mid-populate" harmless by construction: an entry the crash lost
// is recomputed from the same history that produced it (docs/CACHING.md).

import (
	"fmt"

	"papyrus/internal/obs"
)

// WarmMemo rebuilds the memo cache from the activity manager's recovered
// design history: every successfully completed step whose input and
// output versions are still materialized in the store is re-keyed and
// populated. Returns the number of entries added. A no-op without a
// configured cache.
func (s *System) WarmMemo() int {
	if s.Memo == nil {
		return 0
	}
	warmed := 0
	for _, t := range s.Activity.Threads() {
		for _, rec := range t.Stream().Records() {
			for _, step := range rec.Steps {
				if s.Memo.WarmStep(s.Store, step) {
					warmed++
				}
			}
		}
	}
	s.Metrics.Add("memo.warm", int64(warmed))
	if s.Trace != nil && warmed > 0 {
		s.Trace.Emit(obs.Event{
			VT: s.Cluster.Now(), Type: obs.EvMemoWarm,
			Args: map[string]string{"entries": fmt.Sprintf("%d", warmed)},
		})
	}
	return warmed
}
