package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"papyrus/internal/history"
)

// Session persistence: the dissertation keeps design data and the history
// persistently so the activity manager, the reclamation process, and later
// sessions share one durable state (§5.3). SaveSession/LoadSession extend
// that to the whole environment: the object store snapshots through the
// oct codecs and every thread's control stream through the history
// package's persistent form.

// sessionThread is one persisted thread. ID keeps the activity-manager
// thread ID stable across save/recover, so write-ahead log records —
// which reference threads by ID — replay against the restored thread
// (0 in pre-ID session files: restore allocates a fresh ID).
type sessionThread struct {
	ID       int             `json:"id,omitempty"`
	Name     string          `json:"name"`
	Owner    string          `json:"owner"`
	CursorID int             `json:"cursor_id"`
	Stream   json.RawMessage `json:"stream"`
}

type sessionFile struct {
	Threads []sessionThread `json:"threads"`
}

const (
	storeFile   = "store.json"
	threadsFile = "threads.json"
)

// SaveSession writes the store and all threads under dir.
func (s *System) SaveSession(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Reclamation composes with checkpoint compaction: when the
	// background reclaimer is armed, run one full sweep first so the
	// snapshot — and every recovery from it — never carries versions
	// already past their grace period (docs/RECLAIM.md).
	if s.cfg.SweepEvery > 0 && s.Reclaimer != nil {
		if _, err := s.Reclaimer.Sweep(0); err != nil {
			return fmt.Errorf("core: pre-checkpoint sweep: %w", err)
		}
	}
	var storeBuf bytes.Buffer
	if err := s.Store.Snapshot(&storeBuf); err != nil {
		return fmt.Errorf("core: snapshot store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, storeFile), storeBuf.Bytes(), 0o644); err != nil {
		return err
	}

	var sf sessionFile
	for _, t := range s.Activity.Threads() {
		var streamBuf bytes.Buffer
		if err := t.Stream().Save(&streamBuf); err != nil {
			return fmt.Errorf("core: save thread %q: %w", t.Name(), err)
		}
		st := sessionThread{ID: t.ID(), Name: t.Name(), Owner: t.Owner(), Stream: streamBuf.Bytes()}
		if c := t.Cursor(); c != nil {
			st.CursorID = c.ID
		}
		sf.Threads = append(sf.Threads, st)
	}
	data, err := json.MarshalIndent(&sf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, threadsFile), data, 0o644); err != nil {
		return err
	}
	// The snapshot is the checkpoint (docs/DURABILITY.md): compact the
	// write-ahead log against it. No-op without durability.
	return s.Store.Checkpoint()
}

// LoadSession builds a fresh System from cfg and restores a saved session
// into it. The simulated cluster restarts at virtual time zero (processes
// do not survive sessions — the dissertation explicitly leaves crash
// recovery of in-flight work out of scope).
func LoadSession(cfg Config, dir string) (*System, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	storeData, err := os.ReadFile(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("core: read session store: %w", err)
	}
	if err := s.Store.Restore(bytes.NewReader(storeData)); err != nil {
		return nil, err
	}
	threadData, err := os.ReadFile(filepath.Join(dir, threadsFile))
	if err != nil {
		return nil, fmt.Errorf("core: read session threads: %w", err)
	}
	var sf sessionFile
	if err := json.Unmarshal(threadData, &sf); err != nil {
		return nil, fmt.Errorf("core: decode session threads: %w", err)
	}
	for _, st := range sf.Threads {
		stream, err := history.Load(bytes.NewReader(st.Stream))
		if err != nil {
			return nil, fmt.Errorf("core: load thread %q: %w", st.Name, err)
		}
		if _, err := s.Activity.ReinstateThread(st.ID, st.Name, st.Owner, stream, st.CursorID); err != nil {
			return nil, err
		}
		// Re-feed the history to the inference engine so metadata
		// (types, relationships, the ADG) is reconstructed — Ch. 6's
		// point that the history subsumes the metadata.
		if s.Inference != nil {
			for _, rec := range stream.Records() {
				for _, step := range rec.Steps {
					s.Inference.ObserveStep(step)
				}
			}
		}
	}
	// With durability armed, anchor the (possibly fresh) log to the loaded
	// state: the checkpoint record carries the restored store's
	// fingerprint, making the log a valid delta on top of this snapshot.
	if err := s.Store.Checkpoint(); err != nil {
		return nil, err
	}
	return s, nil
}
