package core

// Durability: when Config.Durability is set, the System opens a shared
// write-ahead log and attaches it to the object store and the activity
// manager. Every committed version batch, thread lifecycle event, record
// attach, and cursor move is appended before the operation is
// acknowledged; SaveSession doubles as the checkpoint that compacts the
// log. Recover rebuilds a System from the snapshot plus the log tail
// after a crash (docs/DURABILITY.md).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"papyrus/internal/history"
	"papyrus/internal/obs"
	"papyrus/internal/wal"
)

// DurabilityConfig arms write-ahead logging for a System.
type DurabilityConfig struct {
	// Dir holds the log segments. Empty disables durability.
	Dir string
	// FsyncEvery is the group-commit flush interval in virtual ticks:
	// <= 1 fsyncs every append (strict commit-before-ack durability);
	// larger values batch fsyncs, trading the tail of the log for
	// throughput. Rotation, checkpointing, and Close always fsync.
	FsyncEvery int64
	// SegmentBytes rotates log segments at this size;
	// 0 selects wal.DefaultSegmentBytes.
	SegmentBytes int64
}

// openWAL opens the configured log and attaches it to the store and the
// activity manager. No-op when durability is unconfigured.
func (s *System) openWAL() error {
	d := s.cfg.Durability
	if d == nil || d.Dir == "" {
		return nil
	}
	l, err := wal.Open(wal.Options{
		Dir:          d.Dir,
		SegmentBytes: d.SegmentBytes,
		FsyncEvery:   d.FsyncEvery,
		Now:          s.Cluster.Now,
		Metrics:      s.Metrics,
		Tracer:       s.Trace,
	})
	if err != nil {
		return fmt.Errorf("core: open wal: %w", err)
	}
	s.WAL = l
	s.Store.AttachWAL(l)
	s.Activity.AttachWAL(l)
	return nil
}

// Close syncs and closes the System's write-ahead log. Terminal: store
// and activity operations fail after Close when durability is armed.
// Safe (and a no-op) on systems without durability.
func (s *System) Close() error {
	if s.WAL == nil {
		return nil
	}
	return s.WAL.Close()
}

// Recover rebuilds a System after a crash: the session snapshot in
// sessionDir (SaveSession's store.json + threads.json; "" or missing
// files mean no snapshot was ever taken) is the checkpoint, and the
// write-ahead log in cfg.Durability.Dir replays the delta since. The
// torn tail a crashed writer left behind is truncated, checkpoint
// fingerprints are verified against the restored snapshot, and the
// recovered System continues appending to the same log. The returned
// stats report how much log was read and how many trailing bytes were
// discarded.
func Recover(cfg Config, sessionDir string) (*System, wal.ReplayStats, error) {
	d := cfg.Durability
	if d == nil || d.Dir == "" {
		return nil, wal.ReplayStats{}, fmt.Errorf("core: Recover requires Config.Durability")
	}
	// Build the system with the log detached: nothing that happens during
	// snapshot restore or log replay may re-append.
	bare := cfg
	bare.Durability = nil
	s, err := New(bare)
	if err != nil {
		return nil, wal.ReplayStats{}, err
	}
	s.cfg.Durability = d

	if sessionDir != "" {
		if err := s.restoreSnapshotIfPresent(sessionDir); err != nil {
			return nil, wal.ReplayStats{}, err
		}
	}

	// Replay every valid record through both subsystems; wal.Replay stops
	// cleanly at the torn tail.
	stats, err := wal.Replay(d.Dir, func(r wal.Record) error {
		storeApplied, err := s.Store.ReplayWALRecord(r)
		if err != nil {
			return err
		}
		actApplied, err := s.Activity.ReplayWALRecord(r)
		if err != nil {
			return err
		}
		if storeApplied || actApplied {
			s.Metrics.Inc("wal.recover.applied")
		} else {
			s.Metrics.Inc("wal.recover.skipped")
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	s.Metrics.Add("wal.recover.records", int64(stats.Records))
	s.Metrics.Add("wal.recover.segments", int64(stats.Segments))
	if s.Trace != nil {
		s.Trace.Emit(obs.Event{VT: s.Cluster.Now(), Type: obs.EvWALRecover, Name: d.Dir,
			Args: map[string]string{
				"records":   fmt.Sprintf("%d", stats.Records),
				"segments":  fmt.Sprintf("%d", stats.Segments),
				"truncated": fmt.Sprintf("%d", stats.Truncated),
			}})
	}

	// Re-feed the recovered histories to the inference engine (Ch. 6: the
	// history subsumes the metadata), mirroring LoadSession.
	if s.Inference != nil {
		for _, t := range s.Activity.Threads() {
			for _, rec := range t.Stream().Records() {
				for _, step := range rec.Steps {
					s.Inference.ObserveStep(step)
				}
			}
		}
	}

	// The memo cache is derived data (no log of its own): rebuild it from
	// the recovered history so post-crash rework replays are still hits.
	s.WarmMemo()

	// Reopen for continued appends: wal.Open truncates the torn tail, so
	// the log's durable content now matches the recovered state exactly.
	if err := s.openWAL(); err != nil {
		return nil, stats, err
	}
	return s, stats, nil
}

// restoreSnapshotIfPresent loads store.json and threads.json from dir,
// treating missing files as an empty snapshot — a crash may predate the
// first SaveSession. Threads keep their saved IDs so the log tail can
// reference them; inference re-feeding is the caller's job (it must see
// the post-replay streams, not the snapshot's).
func (s *System) restoreSnapshotIfPresent(dir string) error {
	storeData, err := os.ReadFile(filepath.Join(dir, storeFile))
	switch {
	case err == nil:
		if err := s.Store.Restore(bytes.NewReader(storeData)); err != nil {
			return err
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("core: read session store: %w", err)
	}

	threadData, err := os.ReadFile(filepath.Join(dir, threadsFile))
	switch {
	case err == nil:
		var sf sessionFile
		if err := json.Unmarshal(threadData, &sf); err != nil {
			return fmt.Errorf("core: decode session threads: %w", err)
		}
		for _, st := range sf.Threads {
			stream, err := history.Load(bytes.NewReader(st.Stream))
			if err != nil {
				return fmt.Errorf("core: load thread %q: %w", st.Name, err)
			}
			if _, err := s.Activity.ReinstateThread(st.ID, st.Name, st.Owner, stream, st.CursorID); err != nil {
				return err
			}
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("core: read session threads: %w", err)
	}
	return nil
}
