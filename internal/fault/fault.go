// Package fault is the deterministic fault-injection subsystem of the
// Papyrus reproduction. The dissertation's whole pitch is surviving messy
// design processes — programmable aborts (§4.3.4), resumed task states,
// re-migration of stranded processes (§4.3.3) — and this package turns
// those recovery code paths from decorative into tested: a seeded
// fault.Plan schedules virtual-time fault events against the sprite
// cluster's event queue and perturbs the task manager's step completions.
//
// Three fault classes are modeled:
//
//   - node crashes: a workstation goes down at a planned virtual time
//     (optionally recovering later); every resident process is killed
//     with a Crashed completion, which the task manager's retry policy
//     re-issues;
//   - transient step failures: a per-step-name failure probability makes
//     an attempt fail before the tool body runs, so the attempt leaves
//     no OCT writes behind;
//   - migration stalls: a probability that any migration takes extra
//     in-transit ticks, exercising timeout-shaped schedules.
//
// Every random decision is a pure hash of (seed, fault kind, target,
// attempt ordinal) — no mutable RNG state — so decisions are independent
// of completion order and two runs of the same seeded workload inject
// byte-identical fault sequences (the fault-matrix integration test
// asserts this on the exported metrics). See docs/FAULTS.md for the plan
// grammar, retry semantics, and determinism guarantees.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"papyrus/internal/obs"
	"papyrus/internal/sprite"
)

// Crash schedules one workstation outage in virtual time.
type Crash struct {
	Node      int   // workstation ID
	At        int64 // virtual time the node goes down
	RecoverAt int64 // virtual time it comes back; 0 = never
}

// StepFail gives one step name's transient-failure distribution.
type StepFail struct {
	// Prob is the per-attempt probability the step fails transiently.
	Prob float64
	// MaxFails caps injected failures: attempts beyond it always pass,
	// guaranteeing progress under retry. 0 leaves the cap unset.
	MaxFails int
}

// Stall gives the migration-stall distribution.
type Stall struct {
	Prob  float64 // per-migration probability of a stall
	Ticks int64   // extra in-transit virtual ticks when stalled
}

// Plan is a complete, seeded fault schedule. The zero Plan injects
// nothing. Plans are value types: copy freely, compare with String.
type Plan struct {
	Seed    int64
	Crashes []Crash
	// StepFail maps a step name to its failure spec; the key "*" applies
	// to every step without an explicit entry.
	StepFail map[string]StepFail
	Stall    Stall
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.StepFail) == 0 &&
		(p.Stall.Prob <= 0 || p.Stall.Ticks <= 0)
}

// String renders the plan in the canonical ParsePlan grammar: seed
// first, crashes sorted by (time, node), step failures sorted by name,
// stall last. ParsePlan(p.String()) reproduces p exactly.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	crashes := append([]Crash(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].At != crashes[j].At {
			return crashes[i].At < crashes[j].At
		}
		return crashes[i].Node < crashes[j].Node
	})
	for _, c := range crashes {
		fmt.Fprintf(&b, ",crash=%d@%d", c.Node, c.At)
		if c.RecoverAt > 0 {
			fmt.Fprintf(&b, "-%d", c.RecoverAt)
		}
	}
	names := make([]string, 0, len(p.StepFail))
	for n := range p.StepFail {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sf := p.StepFail[n]
		fmt.Fprintf(&b, ",stepfail=%s:%g", n, sf.Prob)
		if sf.MaxFails > 0 {
			fmt.Fprintf(&b, ":%d", sf.MaxFails)
		}
	}
	if p.Stall.Prob > 0 && p.Stall.Ticks > 0 {
		fmt.Fprintf(&b, ",stall=%g:%d", p.Stall.Prob, p.Stall.Ticks)
	}
	return b.String()
}

// ParsePlan parses the -faults flag grammar: comma-separated key=value
// items, each one of
//
//	seed=N                    RNG seed (default 0)
//	crash=NODE@AT[-RECOVER]   node crash at virtual time AT, optional recovery
//	stepfail=NAME:PROB[:MAX]  transient failure probability for step NAME
//	                          ("*" = every step), at most MAX injections
//	stall=PROB:TICKS          migration stall probability and extra delay
//
// crash= and stepfail= may repeat. Example:
//
//	seed=7,crash=1@100-300,stepfail=Optimize:0.5:2,stall=0.25:10
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, item := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is not key=value", item)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: seed %q: %v", val, err)
			}
			p.Seed = n
		case "crash":
			c, err := parseCrash(val)
			if err != nil {
				return Plan{}, err
			}
			p.Crashes = append(p.Crashes, c)
		case "stepfail":
			name, sf, err := parseStepFail(val)
			if err != nil {
				return Plan{}, err
			}
			if p.StepFail == nil {
				p.StepFail = map[string]StepFail{}
			}
			p.StepFail[name] = sf
		case "stall":
			st, err := parseStall(val)
			if err != nil {
				return Plan{}, err
			}
			p.Stall = st
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q", key)
		}
	}
	return p, nil
}

func parseCrash(val string) (Crash, error) {
	node, rest, ok := strings.Cut(val, "@")
	if !ok {
		return Crash{}, fmt.Errorf("fault: crash %q wants NODE@AT[-RECOVER]", val)
	}
	var c Crash
	var err error
	if c.Node, err = strconv.Atoi(node); err != nil || c.Node < 0 {
		return Crash{}, fmt.Errorf("fault: crash node %q", node)
	}
	at, rec, hasRec := strings.Cut(rest, "-")
	if c.At, err = strconv.ParseInt(at, 10, 64); err != nil || c.At < 0 {
		return Crash{}, fmt.Errorf("fault: crash time %q", at)
	}
	if hasRec {
		if c.RecoverAt, err = strconv.ParseInt(rec, 10, 64); err != nil || c.RecoverAt <= c.At {
			return Crash{}, fmt.Errorf("fault: crash recovery %q must be a time after %d", rec, c.At)
		}
	}
	return c, nil
}

func parseStepFail(val string) (string, StepFail, error) {
	parts := strings.Split(val, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return "", StepFail{}, fmt.Errorf("fault: stepfail %q wants NAME:PROB[:MAXFAILS]", val)
	}
	var sf StepFail
	var err error
	if sf.Prob, err = strconv.ParseFloat(parts[1], 64); err != nil || sf.Prob < 0 || sf.Prob > 1 {
		return "", StepFail{}, fmt.Errorf("fault: stepfail probability %q not in [0,1]", parts[1])
	}
	if len(parts) == 3 {
		if sf.MaxFails, err = strconv.Atoi(parts[2]); err != nil || sf.MaxFails < 0 {
			return "", StepFail{}, fmt.Errorf("fault: stepfail cap %q", parts[2])
		}
	}
	return parts[0], sf, nil
}

func parseStall(val string) (Stall, error) {
	prob, ticks, ok := strings.Cut(val, ":")
	if !ok {
		return Stall{}, fmt.Errorf("fault: stall %q wants PROB:TICKS", val)
	}
	var st Stall
	var err error
	if st.Prob, err = strconv.ParseFloat(prob, 64); err != nil || st.Prob < 0 || st.Prob > 1 {
		return Stall{}, fmt.Errorf("fault: stall probability %q not in [0,1]", prob)
	}
	if st.Ticks, err = strconv.ParseInt(ticks, 10, 64); err != nil || st.Ticks < 0 {
		return Stall{}, fmt.Errorf("fault: stall ticks %q", ticks)
	}
	return st, nil
}

// Injector evaluates a Plan's random decisions and arms its scheduled
// events. It is stateless beyond the plan itself: every decision is a
// pure function of (seed, kind, target, ordinal), so it is safe for
// concurrent use and independent of event ordering.
type Injector struct {
	plan    Plan
	metrics *obs.Registry
	tracer  *obs.Tracer
	now     func() int64
}

// New returns an Injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// SetObservability wires the optional metrics/trace sinks and virtual
// clock (see docs/OBSERVABILITY.md). All three may be nil.
func (in *Injector) SetObservability(m *obs.Registry, t *obs.Tracer, now func() int64) {
	in.metrics, in.tracer, in.now = m, t, now
}

func (in *Injector) vt() int64 {
	if in.now == nil {
		return 0
	}
	return in.now()
}

// Arm schedules the plan's node crashes/recoveries on the cluster's
// event queue and installs the migration-stall hook. Call once, before
// driving the cluster.
func (in *Injector) Arm(c *sprite.Cluster) {
	for _, cr := range in.plan.Crashes {
		c.ScheduleCrash(sprite.NodeID(cr.Node), cr.At)
		if cr.RecoverAt > 0 {
			c.ScheduleRecover(sprite.NodeID(cr.Node), cr.RecoverAt)
		}
		in.metrics.Inc("fault.injected.crash")
	}
	if in.plan.Stall.Prob > 0 && in.plan.Stall.Ticks > 0 {
		c.SetStall(in.MigrationStall)
	}
}

// FailStep is the task manager's fault hook (task.Config.FaultStep): it
// decides whether the given attempt of a step fails transiently. The
// decision hashes (seed, step name, attempt), so it does not depend on
// how many other steps ran in between.
func (in *Injector) FailStep(step string, attempt int) (bool, string) {
	sf, ok := in.plan.StepFail[step]
	if !ok {
		if sf, ok = in.plan.StepFail["*"]; !ok {
			return false, ""
		}
	}
	if sf.Prob <= 0 {
		return false, ""
	}
	if sf.MaxFails > 0 && attempt > sf.MaxFails {
		return false, ""
	}
	if uniform(mix(in.plan.Seed, "stepfail/"+step, int64(attempt))) >= sf.Prob {
		return false, ""
	}
	in.metrics.Inc("fault.injected.stepfail")
	if in.tracer != nil {
		in.tracer.Emit(obs.Event{
			VT: in.vt(), Type: obs.EvFaultInject, Name: step,
			Args: map[string]string{"kind": "stepfail", "attempt": fmt.Sprintf("%d", attempt)},
		})
	}
	return true, fmt.Sprintf("injected transient failure (seed %d)", in.plan.Seed)
}

// MigrationStall is the cluster's stall hook (sprite.Config.Stall): it
// returns the extra in-transit ticks for the nth migration of a process,
// hashed from (seed, process name, pid, nth).
func (in *Injector) MigrationStall(name string, pid, nth int) int64 {
	st := in.plan.Stall
	if st.Prob <= 0 || st.Ticks <= 0 {
		return 0
	}
	if uniform(mix(in.plan.Seed, "stall/"+name, int64(pid)<<20|int64(nth))) >= st.Prob {
		return 0
	}
	in.metrics.Inc("fault.injected.stall")
	if in.tracer != nil {
		in.tracer.Emit(obs.Event{
			VT: in.vt(), Type: obs.EvFaultInject, Name: name, PID: pid,
			Args: map[string]string{"kind": "stall", "ticks": fmt.Sprintf("%d", st.Ticks)},
		})
	}
	return st.Ticks
}

// mix hashes (seed, key, n) into 64 well-scrambled bits: FNV-1a over the
// key folded with the seed and ordinal, then the splitmix64 finalizer.
// Pure and order-independent, which is what makes injected fault
// sequences reproducible across runs.
func mix(seed int64, key string, n int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= uint64(seed) * 0x9E3779B97F4A7C15
	h ^= uint64(n) * 0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// uniform maps a hash to [0,1) with 53 bits of precision.
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }
