package fault

import (
	"strings"
	"testing"

	"papyrus/internal/obs"
	"papyrus/internal/sprite"
)

func TestParsePlanRoundtrip(t *testing.T) {
	for _, s := range []string{
		"seed=0",
		"seed=7",
		"seed=7,crash=1@100",
		"seed=7,crash=1@100-300",
		"seed=7,crash=0@40,crash=1@100-300",
		"seed=3,stepfail=*:0.5",
		"seed=3,stepfail=Optimize:0.25:2",
		"seed=3,stepfail=A:0.1,stepfail=B:0.9:4",
		"seed=1,stall=0.25:10",
		"seed=7,crash=1@100-300,stepfail=Optimize:0.5:2,stall=0.25:10",
	} {
		p, err := ParsePlan(s)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
	// String canonicalizes ordering; reparsing its output is stable.
	p, err := ParsePlan("stall=0.5:5,stepfail=B:1,crash=2@50,seed=9,crash=1@10,stepfail=A:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := "seed=9,crash=1@10,crash=2@50,stepfail=A:0.5,stepfail=B:1,stall=0.5:5"
	if got := p.String(); got != want {
		t.Errorf("canonical form %q, want %q", got, want)
	}
	if q, err := ParsePlan(p.String()); err != nil || q.String() != p.String() {
		t.Errorf("canonical form does not roundtrip: %v %q", err, q.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"bogus",
		"frob=1",
		"seed=abc",
		"crash=1",
		"crash=x@5",
		"crash=-1@5",
		"crash=1@-5",
		"crash=1@100-50",
		"crash=1@100-100",
		"stepfail=OnlyName",
		"stepfail=:0.5",
		"stepfail=A:1.5",
		"stepfail=A:-0.1",
		"stepfail=A:0.5:-1",
		"stepfail=A:0.5:2:9",
		"stall=0.5",
		"stall=2:10",
		"stall=0.5:-1",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", s)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if !(Plan{Seed: 42, Stall: Stall{Prob: 0.5}}).Empty() {
		t.Error("stall without ticks should be empty")
	}
	if (Plan{Crashes: []Crash{{Node: 1, At: 5}}}).Empty() {
		t.Error("plan with a crash should not be empty")
	}
}

func TestFailStepDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed int64) *Injector {
		return New(Plan{Seed: seed, StepFail: map[string]StepFail{"*": {Prob: 0.5}}})
	}
	decisions := func(in *Injector) string {
		var b strings.Builder
		for attempt := 1; attempt <= 64; attempt++ {
			if fail, _ := in.FailStep("Optimize", attempt); fail {
				b.WriteByte('F')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := decisions(mk(7)), decisions(mk(7))
	if a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
	if fails := strings.Count(a, "F"); fails == 0 || fails == 64 {
		t.Errorf("prob 0.5 produced %d/64 failures; hash looks degenerate", fails)
	}
	if c := decisions(mk(8)); c == a {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestFailStepMaxFailsGuaranteesProgress(t *testing.T) {
	in := New(Plan{Seed: 1, StepFail: map[string]StepFail{"S": {Prob: 1, MaxFails: 2}}})
	for attempt := 1; attempt <= 2; attempt++ {
		if fail, reason := in.FailStep("S", attempt); !fail || reason == "" {
			t.Errorf("attempt %d should fail with a reason", attempt)
		}
	}
	if fail, _ := in.FailStep("S", 3); fail {
		t.Error("attempt past MaxFails must pass")
	}
}

func TestFailStepWildcardAndOverride(t *testing.T) {
	in := New(Plan{Seed: 1, StepFail: map[string]StepFail{
		"*":    {Prob: 1},
		"Safe": {Prob: 0},
	}})
	if fail, _ := in.FailStep("Anything", 1); !fail {
		t.Error("wildcard prob 1 should fail")
	}
	if fail, _ := in.FailStep("Safe", 1); fail {
		t.Error("explicit prob-0 entry must override the wildcard")
	}
	none := New(Plan{Seed: 1})
	if fail, _ := none.FailStep("X", 1); fail {
		t.Error("empty plan injected a failure")
	}
}

func TestMigrationStall(t *testing.T) {
	always := New(Plan{Seed: 1, Stall: Stall{Prob: 1, Ticks: 10}})
	if got := always.MigrationStall("tool", 3, 1); got != 10 {
		t.Errorf("stall = %d, want 10", got)
	}
	never := New(Plan{Seed: 1, Stall: Stall{Prob: 0, Ticks: 10}})
	if got := never.MigrationStall("tool", 3, 1); got != 0 {
		t.Errorf("prob-0 stall = %d, want 0", got)
	}
	// Deterministic per (pid, ordinal).
	half := New(Plan{Seed: 5, Stall: Stall{Prob: 0.5, Ticks: 7}})
	for pid := 0; pid < 8; pid++ {
		for nth := 0; nth < 8; nth++ {
			if half.MigrationStall("t", pid, nth) != half.MigrationStall("t", pid, nth) {
				t.Fatalf("stall decision for pid %d nth %d not stable", pid, nth)
			}
		}
	}
}

func TestArmSchedulesCrashesAndStall(t *testing.T) {
	reg := obs.NewRegistry()
	cluster, err := sprite.NewCluster(sprite.Config{Nodes: 2, MigrationDelay: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan("seed=3,crash=0@10-40,stall=1:5")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	in.SetObservability(reg, nil, cluster.Now)
	in.Arm(cluster)
	if got := reg.Counter("fault.injected.crash"); got != 1 {
		t.Errorf("fault.injected.crash = %d, want 1", got)
	}

	p := cluster.Spawn(sprite.Spec{Name: "victim", Work: 100, Home: 0})
	done, ok := cluster.AwaitCompletion()
	if !ok || !done.Crashed || done.At != 10 {
		t.Fatalf("completion %+v, want crash kill at t=10 from the armed plan", done)
	}
	_ = p
	cluster.Drain() // recovery at t=40
	if cluster.NodeByID(0).Down() {
		t.Fatal("node 0 still down after armed recovery")
	}

	// The armed stall hook slows every migration by 5 ticks.
	q := cluster.Spawn(sprite.Spec{Name: "mover", Work: 10, Home: 0})
	start := cluster.Now()
	if err := cluster.Migrate(q.PID, 1); err != nil {
		t.Fatal(err)
	}
	done, ok = cluster.AwaitCompletion()
	if !ok {
		t.Fatal("no completion")
	}
	if got := done.At - start; got != 2+5+10 {
		t.Errorf("stalled migration run took %d ticks, want 17", got)
	}
	if got := reg.Counter("fault.injected.stall"); got != 1 {
		t.Errorf("fault.injected.stall = %d, want 1", got)
	}
}

func TestInjectorTraceEvents(t *testing.T) {
	tr := obs.NewTracer()
	in := New(Plan{Seed: 1, StepFail: map[string]StepFail{"S": {Prob: 1}}, Stall: Stall{Prob: 1, Ticks: 3}})
	in.SetObservability(nil, tr, nil)
	if fail, _ := in.FailStep("S", 1); !fail {
		t.Fatal("expected injected failure")
	}
	if in.MigrationStall("S", 1, 1) != 3 {
		t.Fatal("expected injected stall")
	}
	if tr.Len() != 2 {
		t.Errorf("tracer has %d events, want 2 fault.inject events", tr.Len())
	}
}
