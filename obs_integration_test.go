package papyrus

// Observability integration: run a real task through the full system with
// a metrics registry and tracer wired in, then check that the event
// stream tells a coherent story — issues pair with completions, virtual
// time never runs backwards, counters agree with the trace, and the
// Chrome export is valid JSON.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
)

func TestObservabilityEndToEnd(t *testing.T) {
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer()
	sys, err := core.New(core.Config{Nodes: 4, ReMigrateEvery: 25, Metrics: metrics, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ImportObject("/s", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ImportObject("/c", oct.TypeText, oct.Text("set d0 1\nsim\nexpect q0 1\n")); err != nil {
		t.Fatal(err)
	}
	th := sys.NewThread("obs-test", "u")
	rec, err := sys.Invoke(th, "Structure_Synthesis",
		map[string]string{"Incell": "/s", "Musa_Command": "/c"},
		map[string]string{"Outcell": "out", "Cell_Statistics": "st"})
	if err != nil {
		t.Fatal(err)
	}

	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("no trace events emitted")
	}

	// Virtual time is non-decreasing in emission order: the simulation is
	// a single event loop, so an event stamped earlier than its
	// predecessor means a subsystem stamped with the wrong clock.
	for i := 1; i < len(events); i++ {
		if events[i].VT < events[i-1].VT {
			t.Fatalf("event %d (%s) at vt=%d emitted after event %d (%s) at vt=%d",
				i, events[i].Type, events[i].VT, i-1, events[i-1].Type, events[i-1].VT)
		}
	}

	// Every step of the task issues exactly once and completes exactly
	// once, with issue at or before completion; completions carry the
	// issue time as their span start.
	issued := map[string]int64{}
	completed := map[string]int64{}
	for _, e := range events {
		switch e.Type {
		case obs.EvStepIssued:
			if _, dup := issued[e.Name]; dup {
				t.Fatalf("step %q issued twice", e.Name)
			}
			issued[e.Name] = e.VT
		case obs.EvStepCompleted:
			if _, dup := completed[e.Name]; dup {
				t.Fatalf("step %q completed twice", e.Name)
			}
			completed[e.Name] = e.VT
			if e.Start != issued[e.Name] {
				t.Fatalf("step %q span start %d != issue vt %d", e.Name, e.Start, issued[e.Name])
			}
		case obs.EvStepFailed:
			t.Fatalf("unexpected step failure: %+v", e)
		}
	}
	if len(issued) != len(rec.Steps) || len(completed) != len(rec.Steps) {
		t.Fatalf("trace saw %d issues / %d completions, history has %d steps",
			len(issued), len(completed), len(rec.Steps))
	}
	for name, iv := range issued {
		cv, ok := completed[name]
		if !ok {
			t.Fatalf("step %q issued but never completed", name)
		}
		if iv > cv {
			t.Fatalf("step %q issued at vt=%d after completing at vt=%d", name, iv, cv)
		}
	}

	// Counters agree with the trace and with the history record.
	if got, want := metrics.Counter("task.step.issue"), int64(len(rec.Steps)); got != want {
		t.Fatalf("task.step.issue = %d, want %d", got, want)
	}
	if got, want := metrics.Counter("task.step.complete"), int64(len(rec.Steps)); got != want {
		t.Fatalf("task.step.complete = %d, want %d", got, want)
	}
	if got := metrics.Counter("task.run.commit"); got != 1 {
		t.Fatalf("task.run.commit = %d, want 1", got)
	}
	snap := metrics.Snapshot()
	if snap.Histograms["task.step.ticks"].Count != int64(len(rec.Steps)) {
		t.Fatalf("task.step.ticks count = %d, want %d",
			snap.Histograms["task.step.ticks"].Count, len(rec.Steps))
	}

	// The Chrome export is a valid trace_event JSON object with one "X"
	// span per completed step.
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Fatalf("chrome trace has %d events, tracer holds %d", len(doc.TraceEvents), len(events))
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Fatalf("span %q has negative duration %d", e.Name, e.Dur)
			}
		case "i":
		default:
			t.Fatalf("unexpected phase %q in chrome trace", e.Ph)
		}
	}
	if spans != len(rec.Steps) {
		t.Fatalf("chrome trace has %d spans, want %d (one per step)", spans, len(rec.Steps))
	}
}
