// papyrusd serves the Papyrus design process manager over the wire: a
// multi-tenant session front-end (internal/server) exposing session
// lifecycle, TDL task submission, step status, history/ADG queries, memo
// statistics, and SDS notification subscriptions as a versioned JSON
// HTTP API, with tenants sharded across engine instances and admission
// control (per-tenant token buckets, bounded accept queue with load
// shedding, per-tenant fair queuing) in front of the worker pools.
// docs/SERVER.md is the wire-protocol reference and deployment
// quickstart; internal/client is the Go client.
//
// Usage: papyrusd [flags]
//
// Flags, in the order they matter operationally:
//
//	-addr      listen address (default :8787)
//	-shards    engine instances tenants are hashed across (default 4)
//	-nodes     simulated workstations per shard cluster (default 4)
//	-workers   task-manager worker pool per session (default 0 = auto)
//	-backend   object-store version-index backend per shard: map, btree, or lsm (docs/STORAGE.md)
//	-rate      per-tenant task admissions per second (default 0 = off)
//	-burst     per-tenant token-bucket burst (default max(1, rate))
//	-maxqueue  bound on queued task submissions before load shedding (default 256)
//	-qworkers  admission worker pool draining the fair queue (default 8)
//	-memo      arm a per-shard step-result cache (docs/CACHING.md)
//	-sweep-every  background reclaimer interval per shard (e.g. 5s; 0 = off, docs/RECLAIM.md)
//	-grace        invisibility age (store-clock ticks) before a hidden version is reclaimed
//	-sweep-budget index records scanned per sweep slice per shard (0 = whole store)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"papyrus/internal/obs"
	"papyrus/internal/server"
)

// flagOrder is the order -h prints flags in — the operational order of
// the package doc (serving, sharding, admission), not the stock
// alphabetical listing, which leads with -burst ahead of -rate.
var flagOrder = []string{
	"addr", "shards", "nodes", "workers", "backend",
	"rate", "burst", "maxqueue", "qworkers", "memo",
	"sweep-every", "grace", "sweep-budget",
}

// usage replaces the default flag.Usage: same per-flag format, but in
// flagOrder instead of alphabetically. Flags missing from flagOrder are
// appended at the end so nothing ever drops out of -h.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "usage: papyrusd [flags]")
	fmt.Fprintln(w, "\nmulti-tenant Papyrus session server; docs/SERVER.md is the wire reference.")
	fmt.Fprintln(w, "\nflags:")
	seen := make(map[string]bool, len(flagOrder))
	order := flagOrder
	for _, n := range order {
		seen[n] = true
	}
	flag.VisitAll(func(f *flag.Flag) {
		if !seen[f.Name] {
			order = append(order, f.Name)
		}
	})
	for _, name := range order {
		f := flag.Lookup(name)
		if f == nil {
			continue
		}
		u := f.Usage
		if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
			u += " (default " + f.DefValue + ")"
		}
		fmt.Fprintf(w, "  -%s\n    \t%s\n", f.Name, u)
	}
}

func main() {
	var (
		addr     = flag.String("addr", ":8787", "listen address")
		shards   = flag.Int("shards", 4, "engine instances tenants are hashed across")
		nodes    = flag.Int("nodes", 4, "simulated workstations per shard cluster")
		workers  = flag.Int("workers", 0, "task-manager worker pool per session (0 = auto)")
		backend  = flag.String("backend", "", "object-store version-index backend per shard: map, btree, or lsm (docs/STORAGE.md)")
		rate     = flag.Float64("rate", 0, "per-tenant task admissions per second (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "per-tenant token-bucket burst (0 = max(1, rate))")
		maxQueue = flag.Int("maxqueue", 256, "queued task submissions before load shedding (429)")
		qworkers = flag.Int("qworkers", 8, "admission worker pool draining the fair queue")
		useMemo  = flag.Bool("memo", false, "arm a per-shard step-result cache (docs/CACHING.md)")

		sweepEvery  = flag.Duration("sweep-every", 0, "background reclaimer interval per shard (0 = off, docs/RECLAIM.md)")
		grace       = flag.Int64("grace", 0, "invisibility age in store-clock ticks before a hidden version is physically reclaimed")
		sweepBudget = flag.Int("sweep-budget", 0, "index records scanned per sweep slice per shard (0 = whole store)")
	)
	flag.Usage = usage
	flag.Parse()

	metrics := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Shards:       *shards,
		Nodes:        *nodes,
		Workers:      *workers,
		StoreBackend: *backend,
		Memo:         *useMemo,
		Admission: server.AdmissionConfig{
			RatePerSec: *rate,
			Burst:      *burst,
			MaxQueue:   *maxQueue,
			Workers:    *qworkers,
		},
		Metrics:      metrics,
		SweepEvery:   *sweepEvery,
		ReclaimGrace: *grace,
		SweepBudget:  *sweepBudget,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("papyrusd: serving %d shards on %s (docs/SERVER.md)", *shards, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case sig := <-stop:
		log.Printf("papyrusd: %v — draining", sig)
	case err := <-errc:
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("papyrusd: shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("papyrusd: close: %v", err)
	}
	fmt.Fprintln(os.Stderr, "papyrusd: stopped")
}
