// featurematrix regenerates Table I of the dissertation: the comparison of
// process-support systems along the seven functional requirements of
// Chapter 1. Rows for Powerframe, VOV and Papyrus are introspected from
// the running implementations in this repository; the remaining rows are
// the dissertation's published values.
package main

import (
	"fmt"
	"log"
	"strings"

	"papyrus/internal/baseline"
	"papyrus/internal/core"
)

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func main() {
	sys, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rows := sys.TableI()

	headers := []string{"System", "ToolEncap", "ToolNav", "Explore", "DataEvol", "Context", "Coop", "Distrib", "Source"}
	fmt.Println(strings.Join(headers, "\t"))
	for _, r := range rows {
		src := "dissertation Table I"
		if r.Implemented {
			src = "introspected from implementation"
		}
		fmt.Printf("%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name,
			yn(r.F.ToolEncapsulation), yn(r.F.ToolNavigation),
			yn(r.F.DesignExploration), yn(r.F.DataEvolution),
			yn(r.F.ContextManagement), yn(r.F.CooperativeWork),
			yn(r.F.DistributedArchitecture), src)
	}

	all := func(f baseline.Features) bool {
		return f.ToolEncapsulation && f.ToolNavigation && f.DesignExploration &&
			f.DataEvolution && f.ContextManagement && f.CooperativeWork && f.DistributedArchitecture
	}
	last := rows[len(rows)-1]
	fmt.Printf("\nPapyrus satisfies all seven requirements: %v\n", all(last.F))
}
