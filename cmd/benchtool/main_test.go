package main

// The experiment functions are exercised directly, with the flag-bound
// globals set to small matrices, so the tables CI regenerates are also
// covered by `go test`. Every experiment is deterministic (virtual time,
// seeded workloads); a log.Fatal inside one — a gate failure or a
// fingerprint divergence — fails the test binary, which is exactly the
// check CI's bench-smoke job performs at full size.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"papyrus/internal/obs"
)

func TestQualitativeExperiments(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func()
	}{
		{"speedup", expSpeedup},
		{"remigration", expReMigration},
		{"scopecache", expScopeCache},
		{"storage", expStorage},
		{"rework", expRework},
		{"viewport", expViewport},
		{"inference", expInference},
		{"abort", expAbort},
		{"rebuild", expRebuild},
		{"faults", expFaults},
	} {
		t.Run(tc.name, func(t *testing.T) { tc.run() })
	}
}

func TestScaleExperiment(t *testing.T) {
	dir := t.TempDir()
	scaleSessions, scaleWorkers = "2", "1,2"
	scaleLatency, scaleMin = 100*time.Microsecond, 0
	scaleOut = filepath.Join(dir, "scale.json")
	benchMem = true
	summaryPath = filepath.Join(dir, "summary.md")
	benchGateErrs = nil
	defer func() { benchMem, summaryPath, benchGateErrs = false, "", nil }()

	for _, memo := range []bool{false, true} {
		scaleMemo = memo
		expScale()
		raw, err := os.ReadFile(scaleOut)
		if err != nil {
			t.Fatal(err)
		}
		var rows []scaleRow
		if err := json.Unmarshal(raw, &rows); err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("memo=%v: %d rows, want 2", memo, len(rows))
		}
		// expScale already fataled on any intra-run divergence; across the
		// memo settings the filtered fingerprints must agree too.
		if rows[0].StatsSHA == "" || rows[0].VersionSHA == "" {
			t.Fatalf("memo=%v: empty fingerprints: %+v", memo, rows[0])
		}
		for _, row := range rows {
			if row.AllocsPerStep <= 0 || row.BytesPerStep <= 0 {
				t.Errorf("memo=%v workers=%d: -benchmem left allocs/step=%.1f bytes/step=%.1f",
					memo, row.Workers, row.AllocsPerStep, row.BytesPerStep)
			}
		}
	}
	if len(benchGateErrs) != 0 {
		t.Fatalf("gates tripped with no thresholds set: %v", benchGateErrs)
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### E11 scale") || !strings.Contains(string(md), "| allocs/step |") {
		t.Errorf("summary table missing expected sections:\n%s", md)
	}
}

// TestScaleGatesDefer exercises the deferred-gate path: an absurd alloc
// ceiling and a regression floor above perfect scaling must both record
// violations without aborting the run (profiles/summaries flush first;
// main exits non-zero afterwards).
func TestScaleGatesDefer(t *testing.T) {
	scaleSessions, scaleWorkers = "2", "1,2"
	scaleLatency, scaleMin = 100*time.Microsecond, 0
	scaleOut = filepath.Join(t.TempDir(), "scale.json")
	scaleMemo = false
	benchMem = true
	scaleAllocMax = 0.5   // impossible: every step allocates something
	scaleRegress = 1000.0 // impossible: demands 1000x scaling from 1->2 workers
	benchGateErrs = nil
	defer func() {
		benchMem, scaleAllocMax, scaleRegress, benchGateErrs = false, 0, 0, nil
	}()

	expScale() // must return, not exit
	if len(benchGateErrs) != 2 {
		t.Fatalf("want 2 recorded gate violations (alloc + regression), got %v", benchGateErrs)
	}
}

func TestReplayExperiment(t *testing.T) {
	replayWorkers, replayMin = "1,2", 3
	replayOut = filepath.Join(t.TempDir(), "replay.json")
	benchGateErrs = nil
	defer func() { benchGateErrs = nil }()

	expReplay()

	if len(benchGateErrs) != 0 {
		t.Fatalf("replay gate tripped: %v", benchGateErrs)
	}

	raw, err := os.ReadFile(replayOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []replayRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 workers x memo off/on)", len(rows))
	}
	for _, row := range rows {
		if row.Memo && row.ReplayTicks != 0 {
			t.Errorf("workers=%d memo=on: replay cost %d ticks, want 0", row.Workers, row.ReplayTicks)
		}
		if !row.Memo && row.ReplayTicks != row.FirstTicks {
			t.Errorf("workers=%d memo=off: replay %d != first run %d", row.Workers, row.ReplayTicks, row.FirstTicks)
		}
	}
}

// TestServeExperiment drives the full E13 path at a small size: an
// in-process papyrusd on a loopback listener, concurrent wire sessions,
// latency quantiles, gates, and the summary table.
func TestServeExperiment(t *testing.T) {
	dir := t.TempDir()
	serveSessions, serveShards, serveWorkers, serveTenants = 8, 2, 4, 4
	serveRate, serveBurst, serveQueue = 0, 0, 256
	serveMin, serveP99 = 1, 60000 // loose thresholds: exercise the gate code, catch only collapse
	serveOut = filepath.Join(dir, "serve.json")
	summaryPath = filepath.Join(dir, "summary.md")
	benchGateErrs = nil
	defer func() { summaryPath, benchGateErrs = "", nil }()

	expServe()

	if len(benchGateErrs) != 0 {
		t.Fatalf("serve gates tripped: %v", benchGateErrs)
	}
	raw, err := os.ReadFile(serveOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []serveRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	if rows[0].Steps != 32 {
		t.Errorf("steps = %d, want 32 (8 sessions x 4 steps)", rows[0].Steps)
	}
	if rows[0].VersionSHA == "" {
		t.Error("empty version fingerprint")
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### E13 serve") {
		t.Errorf("summary missing E13 section:\n%s", md)
	}
}

// TestWorkloadExperiment drives the full E15 path at a small size: two
// profiles expanded from one seed, the repeat and worker-invariance
// gates in-process, the wire-parity cell, and the summary table. Any
// fingerprint divergence log.Fatals inside expWorkload and fails the
// binary, which is the same check CI's workload-smoke job performs at
// full size.
func TestWorkloadExperiment(t *testing.T) {
	dir := t.TempDir()
	wlProfiles = "interactive,agentic"
	wlSeed, wlSessions, wlDepth, wlFanout = 11, 2, 3, 3
	wlWorkers, wlMin = "1,2", 1
	wlOut = filepath.Join(dir, "workload.json")
	summaryPath = filepath.Join(dir, "summary.md")
	benchGateErrs = nil
	defer func() { summaryPath, benchGateErrs = "", nil }()

	expWorkload()

	if len(benchGateErrs) != 0 {
		t.Fatalf("workload gates tripped: %v", benchGateErrs)
	}
	raw, err := os.ReadFile(wlOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []workloadRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	// 2 profiles x (2 core worker counts + 1 wire cell).
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Steps <= 0 || row.VersionSHA == "" {
			t.Errorf("%s/%s: empty cell: %+v", row.Profile, row.Path, row)
		}
		if (row.StatsSHA == "") != (row.Path == "wire") {
			t.Errorf("%s/%s: stats fingerprint presence wrong: %+v", row.Profile, row.Path, row)
		}
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### E15 workload") {
		t.Errorf("summary missing E15 section:\n%s", md)
	}
}

// TestIndexExperiment drives the full E16 path at a small size: one
// profile raced across all three version-index backends, with the
// repeat, cross-backend fingerprint, scan-visited, and WAL-recovery
// parity gates all in play. Any divergence log.Fatals inside expIndex
// and fails the binary — the same check CI's index-matrix job performs
// at full size.
func TestIndexExperiment(t *testing.T) {
	dir := t.TempDir()
	ixProfiles, ixBackends = "rework", "map,btree,lsm"
	ixSeed, ixSessions, ixDepth, ixFanout = 11, 2, 3, 3
	ixWorkers, ixScans, ixMin = 2, 2, 0
	ixOut = filepath.Join(dir, "index.json")
	summaryPath = filepath.Join(dir, "summary.md")
	benchGateErrs = nil
	defer func() { summaryPath, benchGateErrs = "", nil }()

	expIndex()

	if len(benchGateErrs) != 0 {
		t.Fatalf("index gates tripped with no floor set: %v", benchGateErrs)
	}
	raw, err := os.ReadFile(ixOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []indexRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	// 1 profile x 3 backends (the repeat run is a gate, not a row).
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row.Backend] = true
		if row.Steps <= 0 || row.Scans <= 0 || row.ScanVisited <= 0 {
			t.Errorf("%s/%s: empty cell: %+v", row.Profile, row.Backend, row)
		}
		// expIndex already fataled on any cross-backend or recovery
		// divergence; re-assert the parity contract on the emitted rows.
		if row.VersionSHA == "" || row.VersionSHA != rows[0].VersionSHA {
			t.Errorf("%s/%s: version fingerprint diverged: %q vs %q",
				row.Profile, row.Backend, row.VersionSHA, rows[0].VersionSHA)
		}
		if row.RecoverSHA != row.VersionSHA {
			t.Errorf("%s/%s: recovery fingerprint diverged: %q vs %q",
				row.Profile, row.Backend, row.RecoverSHA, row.VersionSHA)
		}
	}
	for _, b := range []string{"map", "btree", "lsm"} {
		if !seen[b] {
			t.Errorf("no row for backend %s", b)
		}
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### E16 index") {
		t.Errorf("summary missing E16 section:\n%s", md)
	}
}

// TestReclaimExperiment drives the full E17 path at a small size: the
// deep-rework soak per backend in all four cells (swept, swept repeat,
// unswept, WAL-armed with crash recovery). The repeat, modulo-reclaimed,
// step-identity, and recovery gates all log.Fatal inside expReclaim on
// divergence — the same check CI's reclaim-soak job performs at full
// depth. The ratio-shape gates stay off: they need depth >= 128 so both
// soak halves contain kept chains (docs/RECLAIM.md).
func TestReclaimExperiment(t *testing.T) {
	dir := t.TempDir()
	rcBackends = "map,btree,lsm"
	rcSeed, rcSessions, rcDepth, rcFanout = 11, 2, 8, 2
	rcWorkers, rcSweep, rcBudget = 2, 1, 0
	rcGrowth, rcMaxRatio = 0, 0
	rcOut = filepath.Join(dir, "reclaim.json")
	summaryPath = filepath.Join(dir, "summary.md")
	benchGateErrs = nil
	defer func() { summaryPath, benchGateErrs = "", nil }()

	expReclaim()

	if len(benchGateErrs) != 0 {
		t.Fatalf("reclaim gates tripped with no floor set: %v", benchGateErrs)
	}
	raw, err := os.ReadFile(rcOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []reclaimRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	// 3 backends x 3 modes (the repeat run is a gate, not a row).
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	visible := map[string]string{}
	for _, row := range rows {
		if row.Steps <= 0 || row.WrittenBytes <= 0 || row.VersionSHA == "" || row.VisibleSHA == "" {
			t.Errorf("%s/%s: empty cell: %+v", row.Backend, row.Mode, row)
		}
		switch row.Mode {
		case "swept", "durable":
			// The rework profile erases chains every round; barrier
			// sweeps with grace 0 must physically delete them.
			if row.ReclaimedVersions <= 0 || row.ReclaimedBytes <= 0 {
				t.Errorf("%s/%s: sweeps reclaimed nothing: %+v", row.Backend, row.Mode, row)
			}
			if row.Ratio >= 1 {
				t.Errorf("%s/%s: live/written ratio %.4f not reduced", row.Backend, row.Mode, row.Ratio)
			}
			if row.Mode == "durable" && !row.Recovered {
				t.Errorf("%s: durable cell did not record recovery", row.Backend)
			}
			if row.Mode == "swept" && row.StatsSHA == "" {
				t.Errorf("%s: swept cell missing stats fingerprint", row.Backend)
			}
		case "unswept":
			if row.ReclaimedVersions != 0 {
				t.Errorf("%s/unswept: reclaimed %d versions with sweeps off", row.Backend, row.ReclaimedVersions)
			}
		default:
			t.Errorf("unknown mode %q", row.Mode)
		}
		// expReclaim already fataled on any visible-map divergence;
		// re-assert the modulo-reclaimed contract on the emitted rows.
		if prev, ok := visible[row.Backend]; ok && prev != row.VisibleSHA {
			t.Errorf("%s/%s: visible fingerprint diverged across modes", row.Backend, row.Mode)
		}
		visible[row.Backend] = row.VisibleSHA
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### E17 reclaim") {
		t.Errorf("summary missing E17 section:\n%s", md)
	}
}

// TestVisibleMapSHA pins the projection the modulo-reclaimed gate
// compares: invisible lines are excluded, visible lines are order- and
// content-sensitive.
func TestVisibleMapSHA(t *testing.T) {
	base := visibleMapSHA("/a@1 visible=true x\n/a@2 visible=false y\n")
	if got := visibleMapSHA("/a@1 visible=true x\n"); got != base {
		t.Errorf("invisible line changed the fingerprint")
	}
	if got := visibleMapSHA("/a@1 visible=true z\n"); got == base {
		t.Errorf("visible content change not detected")
	}
}

// TestUsage pins the ordered -h listing: known flags come out in
// flagOrder and unknown ones are appended rather than dropped.
func TestUsage(t *testing.T) {
	var buf bytes.Buffer
	out := flag.CommandLine.Output()
	flag.CommandLine.SetOutput(&buf)
	defer flag.CommandLine.SetOutput(out)
	usage()
	if !strings.Contains(buf.String(), "usage: benchtool") {
		t.Errorf("usage output missing header:\n%s", buf.String())
	}
}

// TestGateFailRecords pins the deferred-exit contract: gateFail records
// and returns, so writers registered after the exit check still flush.
func TestGateFailRecords(t *testing.T) {
	benchGateErrs = nil
	defer func() { benchGateErrs = nil }()
	gateFail("synthetic gate: %d < %d", 1, 2)
	if len(benchGateErrs) != 1 || !strings.Contains(benchGateErrs[0], "synthetic gate: 1 < 2") {
		t.Fatalf("benchGateErrs = %v", benchGateErrs)
	}
	// appendSummary with no -summary file is a no-op, not an error.
	summaryPath = ""
	appendSummary("### nothing\n")
}

func TestStatsSHAFiltersMemoNamespace(t *testing.T) {
	a, b := obs.NewRegistry(), obs.NewRegistry()
	a.Inc("task.step.issue")
	b.Inc("task.step.issue")
	b.Inc("memo.hit")
	b.Add("memo.bytes", 512)
	if statsSHA(a) != statsSHA(b) {
		t.Error("memo.* counters leaked into the filtered fingerprint")
	}
	b.Inc("task.step.issue")
	if statsSHA(a) == statsSHA(b) {
		t.Error("non-memo counter change not reflected in the fingerprint")
	}
}

func TestParseIntList(t *testing.T) {
	got := parseIntList(" 1, 8 ,64,")
	want := []int{1, 8, 64}
	if len(got) != len(want) {
		t.Fatalf("parseIntList: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseIntList: %v, want %v", got, want)
		}
	}
	if max64(3, 5) != 5 || max64(5, 3) != 5 {
		t.Error("max64 broken")
	}
}

func TestFanTemplate(t *testing.T) {
	tpl := fanTemplate(3)
	if !strings.Contains(tpl, "task Fan {A} {D0 D1 D2 }") ||
		!strings.Contains(tpl, "step S3 {net} {D2} {misII -o D2 net}") {
		t.Errorf("fanTemplate(3):\n%s", tpl)
	}
}
