package main

// The experiment functions are exercised directly, with the flag-bound
// globals set to small matrices, so the tables CI regenerates are also
// covered by `go test`. Every experiment is deterministic (virtual time,
// seeded workloads); a log.Fatal inside one — a gate failure or a
// fingerprint divergence — fails the test binary, which is exactly the
// check CI's bench-smoke job performs at full size.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"papyrus/internal/obs"
)

func TestQualitativeExperiments(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func()
	}{
		{"speedup", expSpeedup},
		{"remigration", expReMigration},
		{"scopecache", expScopeCache},
		{"storage", expStorage},
		{"rework", expRework},
		{"viewport", expViewport},
		{"inference", expInference},
		{"abort", expAbort},
		{"rebuild", expRebuild},
		{"faults", expFaults},
	} {
		t.Run(tc.name, func(t *testing.T) { tc.run() })
	}
}

func TestScaleExperiment(t *testing.T) {
	dir := t.TempDir()
	scaleSessions, scaleWorkers = "2", "1,2"
	scaleLatency, scaleMin = 100*time.Microsecond, 0
	scaleOut = filepath.Join(dir, "scale.json")

	for _, memo := range []bool{false, true} {
		scaleMemo = memo
		expScale()
		raw, err := os.ReadFile(scaleOut)
		if err != nil {
			t.Fatal(err)
		}
		var rows []scaleRow
		if err := json.Unmarshal(raw, &rows); err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("memo=%v: %d rows, want 2", memo, len(rows))
		}
		// expScale already fataled on any intra-run divergence; across the
		// memo settings the filtered fingerprints must agree too.
		if rows[0].StatsSHA == "" || rows[0].VersionSHA == "" {
			t.Fatalf("memo=%v: empty fingerprints: %+v", memo, rows[0])
		}
	}
}

func TestReplayExperiment(t *testing.T) {
	replayWorkers, replayMin = "1,2", 3
	replayOut = filepath.Join(t.TempDir(), "replay.json")

	expReplay()

	raw, err := os.ReadFile(replayOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []replayRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 workers x memo off/on)", len(rows))
	}
	for _, row := range rows {
		if row.Memo && row.ReplayTicks != 0 {
			t.Errorf("workers=%d memo=on: replay cost %d ticks, want 0", row.Workers, row.ReplayTicks)
		}
		if !row.Memo && row.ReplayTicks != row.FirstTicks {
			t.Errorf("workers=%d memo=off: replay %d != first run %d", row.Workers, row.ReplayTicks, row.FirstTicks)
		}
	}
}

func TestStatsSHAFiltersMemoNamespace(t *testing.T) {
	a, b := obs.NewRegistry(), obs.NewRegistry()
	a.Inc("task.step.issue")
	b.Inc("task.step.issue")
	b.Inc("memo.hit")
	b.Add("memo.bytes", 512)
	if statsSHA(a) != statsSHA(b) {
		t.Error("memo.* counters leaked into the filtered fingerprint")
	}
	b.Inc("task.step.issue")
	if statsSHA(a) == statsSHA(b) {
		t.Error("non-memo counter change not reflected in the fingerprint")
	}
}

func TestParseIntList(t *testing.T) {
	got := parseIntList(" 1, 8 ,64,")
	want := []int{1, 8, 64}
	if len(got) != len(want) {
		t.Fatalf("parseIntList: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseIntList: %v, want %v", got, want)
		}
	}
	if max64(3, 5) != 5 || max64(5, 3) != 5 {
		t.Error("max64 broken")
	}
}

func TestFanTemplate(t *testing.T) {
	tpl := fanTemplate(3)
	if !strings.Contains(tpl, "task Fan {A} {D0 D1 D2 }") ||
		!strings.Contains(tpl, "step S3 {net} {D2} {misII -o D2 net}") {
		t.Errorf("fanTemplate(3):\n%s", tpl)
	}
}
