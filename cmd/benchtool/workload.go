package main

// workload.go is E15: the generated-scenario sweep. Every named workload
// profile (internal/workload, docs/WORKLOADS.md) is expanded from one
// seed and driven three ways — twice in-process at the first worker
// count (repeat gate), once at every other worker count (invariance
// gate), and once over the papyrusd wire path on a single-shard server
// (cross-path gate). The version-map fingerprint must be identical
// across all of them, and the memo-filtered stats fingerprint across the
// in-process cells; wall-clock throughput is the one host-dependent
// column (EXPERIMENTS.md E15).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"papyrus/internal/client"
	"papyrus/internal/core"
	"papyrus/internal/obs"
	"papyrus/internal/server"
	"papyrus/internal/workload"
)

var (
	wlProfiles string
	wlSeed     int64
	wlSessions int
	wlDepth    int
	wlFanout   int
	wlWorkers  string
	wlMin      float64
	wlOut      string
)

// workloadRow is one (profile, path, workers) cell of BENCH_workload.json.
type workloadRow struct {
	Profile  string `json:"profile"`
	Seed     int64  `json:"seed"`
	Sessions int    `json:"sessions"`
	Depth    int    `json:"depth"`
	Fanout   int    `json:"fanout"`
	Rounds   int    `json:"rounds"`
	// Path is "core" (in-process engine) or "wire" (papyrusd loopback).
	Path    string `json:"path"`
	Workers int    `json:"workers"`
	// Backend is the store's version-index backend (-backend flag); the
	// fingerprints must not depend on it (docs/STORAGE.md).
	Backend string `json:"backend"`
	// Steps and StepsPerSec measure completed engine work; WallMS is the
	// whole drive (host-dependent, excluded from the fingerprints).
	Steps       int64   `json:"steps"`
	WallMS      float64 `json:"wall_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// StatsSHA is the memo-filtered metrics fingerprint, compared across
	// the in-process cells only: the wire registry also carries
	// wall-clock latency histograms. VersionSHA is the final OCT version
	// map and must be identical across every cell of a profile,
	// in-process and wire alike.
	StatsSHA   string `json:"stats_sha256,omitempty"`
	VersionSHA string `json:"version_sha256"`
}

// runWorkloadCore drives one profile in-process at the given worker count.
func runWorkloadCore(w *workload.Workload, workers int) workloadRow {
	reg := obs.NewRegistry()
	cfg := w.CoreConfig(core.Config{
		Nodes:            4,
		Workers:          workers,
		DisableInference: true,
		Metrics:          reg,
		StoreBackend:     benchBackend,
	})
	sys, err := core.New(cfg)
	must(err)
	start := time.Now()
	must(workload.RunInProcess(sys, w, workload.Options{}))
	wall := time.Since(start)
	steps := reg.Counter("task.step.complete")
	row := workloadRow{
		Profile:     w.Spec.Profile,
		Seed:        w.Spec.Seed,
		Sessions:    w.Spec.Sessions,
		Depth:       w.Spec.Depth,
		Fanout:      w.Spec.Fanout,
		Rounds:      w.Rounds,
		Path:        "core",
		Workers:     workers,
		Backend:     backendLabel(),
		Steps:       steps,
		WallMS:      float64(wall.Microseconds()) / 1000,
		StepsPerSec: float64(steps) / wall.Seconds(),
		StatsSHA:    statsSHA(reg),
		VersionSHA:  fmt.Sprintf("%x", sha256.Sum256([]byte(sys.Store.VersionMapText()))),
	}
	must(sys.Close())
	return row
}

// runWorkloadWire drives the same profile through a single-shard papyrusd
// on a loopback listener. One shard means designer i lands on engine
// session index i exactly as RunInProcess allocates it, so the final
// version map must match the in-process cells byte for byte.
func runWorkloadWire(w *workload.Workload, workers int) workloadRow {
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Shards:           1,
		Nodes:            4,
		Workers:          workers,
		StoreBackend:     benchBackend,
		ExtraTemplates:   w.Templates,
		DisableInference: !w.Inference,
		Fault:            w.Fault,
		Retry:            w.Retry,
		Admission:        server.AdmissionConfig{Workers: 8, MaxQueue: 1024},
		Metrics:          reg,
	})
	must(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	cl := client.New("http://" + ln.Addr().String())
	cl.RetryBudget = 100
	cl.Backoff = func(hint time.Duration) { time.Sleep(hint / 4) }

	start := time.Now()
	must(workload.RunWire(cl, w, "wl-"+w.Spec.Profile))
	wall := time.Since(start)
	steps := reg.Counter("task.step.complete")
	row := workloadRow{
		Profile:     w.Spec.Profile,
		Seed:        w.Spec.Seed,
		Sessions:    w.Spec.Sessions,
		Depth:       w.Spec.Depth,
		Fanout:      w.Spec.Fanout,
		Rounds:      w.Rounds,
		Path:        "wire",
		Workers:     workers,
		Backend:     backendLabel(),
		Steps:       steps,
		WallMS:      float64(wall.Microseconds()) / 1000,
		StepsPerSec: float64(steps) / wall.Seconds(),
		VersionSHA:  fmt.Sprintf("%x", sha256.Sum256([]byte(srv.ShardSystem(0).Store.VersionMapText()))),
	}
	must(httpSrv.Close())
	must(srv.Close())
	return row
}

// expWorkload is E15. Fingerprint divergence is a hard failure; the only
// soft gate is the -wlmin throughput floor.
func expWorkload() {
	fmt.Println("## E15: generated workloads — every scenario profile, in-process and over the wire")
	fmt.Printf("(seed %d, %d sessions, depth %d, fanout %d; version fingerprint must match across every cell of a profile)\n",
		wlSeed, wlSessions, wlDepth, wlFanout)
	profiles := workload.Profiles()
	if wlProfiles != "all" && wlProfiles != "" {
		profiles = nil
		for _, p := range strings.Split(wlProfiles, ",") {
			if p = strings.TrimSpace(p); p != "" {
				profiles = append(profiles, p)
			}
		}
	}
	workerCounts := parseIntList(wlWorkers)
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}

	fmt.Println("profile | path | workers | rounds | steps | wall ms | steps/sec | fingerprints")
	var rows []workloadRow
	for _, profile := range profiles {
		w, err := workload.Generate(workload.Spec{
			Profile:  profile,
			Seed:     wlSeed,
			Sessions: wlSessions,
			Depth:    wlDepth,
			Fanout:   wlFanout,
		})
		must(err)

		// Repeat gate: the first worker count runs twice and both
		// fingerprints must agree before anything else is trusted.
		ref := runWorkloadCore(w, workerCounts[0])
		again := runWorkloadCore(w, workerCounts[0])
		if again.VersionSHA != ref.VersionSHA || again.StatsSHA != ref.StatsSHA {
			log.Fatalf("workload %s: repeat run diverged (versions %s vs %s, stats %s vs %s)",
				profile, again.VersionSHA[:12], ref.VersionSHA[:12], again.StatsSHA[:12], ref.StatsSHA[:12])
		}
		best := ref
		cells := []workloadRow{ref}
		for _, workers := range workerCounts[1:] {
			row := runWorkloadCore(w, workers)
			if row.VersionSHA != ref.VersionSHA {
				log.Fatalf("workload %s: version map diverged at workers=%d (%s vs %s)",
					profile, workers, row.VersionSHA[:12], ref.VersionSHA[:12])
			}
			if row.StatsSHA != ref.StatsSHA {
				log.Fatalf("workload %s: stats fingerprint diverged at workers=%d (%s vs %s)",
					profile, workers, row.StatsSHA[:12], ref.StatsSHA[:12])
			}
			if row.StepsPerSec > best.StepsPerSec {
				best = row
			}
			cells = append(cells, row)
		}
		wire := runWorkloadWire(w, workerCounts[len(workerCounts)-1])
		if wire.VersionSHA != ref.VersionSHA {
			log.Fatalf("workload %s: wire version map diverged from in-process (%s vs %s)",
				profile, wire.VersionSHA[:12], ref.VersionSHA[:12])
		}
		if wire.Steps != ref.Steps {
			log.Fatalf("workload %s: wire completed %d steps, in-process %d", profile, wire.Steps, ref.Steps)
		}
		cells = append(cells, wire)
		for _, row := range cells {
			fp := row.VersionSHA[:12]
			if row.StatsSHA != "" {
				fp = row.StatsSHA[:12] + "/" + fp
			}
			fmt.Printf("%-11s | %-4s | %7d | %6d | %5d | %7.1f | %9.1f | ok (%s)\n",
				row.Profile, row.Path, row.Workers, row.Rounds, row.Steps, row.WallMS, row.StepsPerSec, fp)
		}
		rows = append(rows, cells...)
		if wlMin > 0 && best.StepsPerSec < wlMin {
			gateFail("workload gate: profile %s best cell %.1f steps/sec < required %.1f",
				profile, best.StepsPerSec, wlMin)
		}
	}

	f, err := os.Create(wlOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode(rows))
	must(f.Close())
	fmt.Printf("wrote %d rows to %s\n", len(rows), wlOut)

	var md strings.Builder
	md.WriteString("### E15 workload: generated scenario profiles\n\n")
	md.WriteString("| profile | path | workers | backend | rounds | steps | steps/sec |\n")
	md.WriteString("|:---|:---|---:|:---|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&md, "| %s | %s | %d | %s | %d | %d | %.1f |\n",
			r.Profile, r.Path, r.Workers, r.Backend, r.Rounds, r.Steps, r.StepsPerSec)
	}
	md.WriteString("\n")
	appendSummary(md.String())
}
