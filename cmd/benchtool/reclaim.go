package main

// reclaim.go is E17: the bounded-memory soak (docs/RECLAIM.md,
// EXPERIMENTS.md E17). The deep-rework workload profile runs to large
// depth with the incremental reclaimer sweeping at every round barrier
// (grace 0, so candidate sets are exact at the barrier), and the
// experiment reports the live-set-vs-total-written bytes ratio at every
// round checkpoint. Gates, per store backend:
//
//   - repeat: two swept runs produce identical stats + version-map
//     fingerprints (reclamation is deterministic);
//   - modulo-reclaimed: a sweep-free run's *visible* version map is
//     byte-identical to the swept run's — sweeping removes exactly the
//     invisible-past-grace versions and nothing else (version numbers
//     are never reused, so the visible lines cannot shift);
//   - bounded: the live/written ratio's peak over the soak's second
//     half must not exceed its first-half peak (-rcgrowth), and
//     optionally the final ratio stays under a ceiling (-rcmaxratio;
//     CI ratchets the recorded value through scripts/reclaimgate.sh);
//   - recovery: a WAL-armed swept run, killed and replayed through
//     core.Recover, converges to the pre-crash fingerprint — reclaim
//     records replay idempotently (the kill-at-every-byte matrix covers
//     every prefix; this covers the full log end-to-end).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"papyrus/internal/core"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/workload"
)

var (
	rcSeed     int64
	rcSessions int
	rcDepth    int
	rcFanout   int
	rcWorkers  int
	rcBackends string
	rcSweep    int
	rcBudget   int
	rcGrowth   float64
	rcMaxRatio float64
	rcOut      string
)

// reclaimRow is one (backend, mode) cell of BENCH_reclaim.json.
type reclaimRow struct {
	Backend  string `json:"backend"`
	Mode     string `json:"mode"` // "swept", "unswept", or "durable"
	Seed     int64  `json:"seed"`
	Sessions int    `json:"sessions"`
	Depth    int    `json:"depth"`
	Rounds   int    `json:"rounds"`
	Steps    int64  `json:"steps"`
	// WrittenBytes is every payload byte ever stored; LiveBytes is what
	// the store still holds at the end. Ratio = live/written is the
	// bounded-memory figure of merit; Checkpoints samples it at every
	// round barrier (after the sweep, when one ran).
	WrittenBytes int64     `json:"written_bytes"`
	LiveBytes    int64     `json:"live_bytes"`
	Ratio        float64   `json:"ratio"`
	Checkpoints  []float64 `json:"checkpoints,omitempty"`
	// ReclaimedVersions/Bytes are the oct.reclaim.* counters: how much
	// the sweeps physically deleted.
	ReclaimedVersions int64   `json:"reclaimed_versions"`
	ReclaimedBytes    int64   `json:"reclaimed_bytes"`
	WallMS            float64 `json:"wall_ms"`
	StatsSHA          string  `json:"stats_sha256,omitempty"`
	VersionSHA        string  `json:"version_sha256"`
	// VisibleSHA fingerprints only the visible version-map lines — the
	// sweep-invariant projection the modulo-reclaimed gate compares.
	VisibleSHA string `json:"visible_sha256"`
	// Recovered is set on the durable cell: the crash-replayed store
	// matched the pre-crash fingerprint.
	Recovered bool `json:"recovered,omitempty"`
}

// visibleMapSHA fingerprints the visible lines of a version map — the
// projection physical reclamation must never change.
func visibleMapSHA(text string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, " visible=true ") {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// runReclaimCell drives one deep-rework soak. sweep arms barrier sweeps;
// durable arms a WAL in a temp dir and returns its config for recovery.
func runReclaimCell(backend string, sweep, durable bool) (reclaimRow, core.Config, string) {
	w, err := workload.Generate(workload.Spec{
		Profile:  "rework",
		Seed:     rcSeed,
		Sessions: rcSessions,
		Depth:    rcDepth,
		Fanout:   rcFanout,
	})
	must(err)
	reg := obs.NewRegistry()
	base := core.Config{
		Nodes:            4,
		Workers:          rcWorkers,
		DisableInference: true,
		Metrics:          reg,
		StoreBackend:     backend,
		ReclaimGrace:     0,
	}
	var walDir string
	if durable {
		walDir, err = os.MkdirTemp("", "e17-wal-*")
		must(err)
		base.Durability = &core.DurabilityConfig{Dir: walDir, FsyncEvery: 64, SegmentBytes: 1 << 20}
	}
	cfg := w.CoreConfig(base)
	sys, err := core.New(cfg)
	must(err)

	opts := workload.Options{ForceRounds: true, SweepBudget: rcBudget}
	if sweep {
		opts.SweepEveryRounds = rcSweep
	}
	var checkpoints []float64
	opts.OnRound = func(round int) error {
		written := sys.Store.TotalWrittenBytes()
		if written > 0 {
			checkpoints = append(checkpoints, float64(sys.Store.TotalBytes())/float64(written))
		}
		return nil
	}

	mode := "unswept"
	if sweep {
		mode = "swept"
	}
	if durable {
		mode = "durable"
	}
	start := time.Now()
	must(workload.RunInProcess(sys, w, opts))
	wall := time.Since(start)

	vm := sys.Store.VersionMapText()
	written := sys.Store.TotalWrittenBytes()
	row := reclaimRow{
		Backend:           backendName(backend),
		Mode:              mode,
		Seed:              rcSeed,
		Sessions:          rcSessions,
		Depth:             rcDepth,
		Rounds:            w.Rounds,
		Steps:             reg.Counter("task.step.complete"),
		WrittenBytes:      written,
		LiveBytes:         sys.Store.TotalBytes(),
		Checkpoints:       checkpoints,
		ReclaimedVersions: reg.Counter("oct.reclaim.versions"),
		ReclaimedBytes:    reg.Counter("oct.reclaim.bytes"),
		WallMS:            float64(wall.Microseconds()) / 1000,
		VersionSHA:        fmt.Sprintf("%x", sha256.Sum256([]byte(vm))),
		VisibleSHA:        visibleMapSHA(vm),
	}
	if written > 0 {
		row.Ratio = float64(row.LiveBytes) / float64(written)
	}
	// The durable registry carries WAL counters whose grouping depends
	// on fsync batching; only the volatile cells contribute the
	// deterministic stats fingerprint.
	if !durable {
		row.StatsSHA = statsSHA(reg)
	}
	if durable {
		// Kill (no graceful drain beyond the commit-before-ack contract)
		// and replay the full log: the recovered store must converge on
		// the pre-crash content, reclaim records included.
		preCrash := sys.Store.Fingerprint()
		must(sys.Close())
		rec, _, err := core.Recover(cfg, "")
		must(err)
		row.Recovered = rec.Store.Fingerprint() == preCrash
		if !row.Recovered {
			log.Fatalf("reclaim %s: recovery diverged (recovered %s, pre-crash %s)",
				backendName(backend), rec.Store.Fingerprint()[:12], preCrash[:12])
		}
		must(rec.Close())
		must(os.RemoveAll(walDir))
	} else {
		must(sys.Close())
	}
	return row, cfg, walDir
}

// backendName normalizes the empty default to its concrete name.
func backendName(b string) string {
	if b == "" {
		return string(oct.DefaultBackend)
	}
	return b
}

// expReclaim is E17. Fingerprint and recovery divergence are hard
// failures; the ratio gates are soft (-rcgrowth, -rcmaxratio) so CI's
// summary and table still flush.
func expReclaim() {
	fmt.Println("## E17: bounded-memory soak — incremental reclamation under deep rework")
	fmt.Printf("(seed %d, %d sessions, depth %d, fanout %d, sweep every %d round(s), budget %d)\n",
		rcSeed, rcSessions, rcDepth, rcFanout, rcSweep, rcBudget)
	fmt.Println("backend | mode | rounds | steps | written B | live B | ratio | reclaimed | gates")

	var rows []reclaimRow
	for _, backend := range strings.Split(rcBackends, ",") {
		backend = strings.TrimSpace(backend)
		if backend == "" {
			continue
		}
		if _, err := oct.ParseBackend(backend); err != nil {
			log.Fatal(err)
		}

		swept, _, _ := runReclaimCell(backend, true, false)
		again, _, _ := runReclaimCell(backend, true, false)
		if again.VersionSHA != swept.VersionSHA || again.StatsSHA != swept.StatsSHA {
			log.Fatalf("reclaim %s: repeat run diverged (versions %s vs %s, stats %s vs %s)",
				swept.Backend, again.VersionSHA[:12], swept.VersionSHA[:12],
				again.StatsSHA[:12], swept.StatsSHA[:12])
		}
		unswept, _, _ := runReclaimCell(backend, false, false)
		if unswept.VisibleSHA != swept.VisibleSHA {
			log.Fatalf("reclaim %s: sweep changed the visible version map (%s vs %s)",
				swept.Backend, swept.VisibleSHA[:12], unswept.VisibleSHA[:12])
		}
		if unswept.Steps != swept.Steps {
			log.Fatalf("reclaim %s: sweep changed completed steps (%d vs %d)",
				swept.Backend, swept.Steps, unswept.Steps)
		}
		durable, _, _ := runReclaimCell(backend, true, true)
		if durable.VersionSHA != swept.VersionSHA {
			log.Fatalf("reclaim %s: WAL-armed run diverged from volatile (%s vs %s)",
				swept.Backend, durable.VersionSHA[:12], swept.VersionSHA[:12])
		}

		// Bounded-memory gates on the swept reference. The ratio
		// oscillates by design — every fourth OLAP chain is kept, so it
		// steps up when one lands — so "non-growing" compares the peak
		// over the soak's second half against the peak over its first
		// half (both halves must contain kept rounds: depth >= 128).
		n := len(swept.Checkpoints)
		if rcGrowth > 0 && n >= 2 {
			peak := func(cs []float64) float64 {
				m := cs[0]
				for _, c := range cs[1:] {
					if c > m {
						m = c
					}
				}
				return m
			}
			first, second := peak(swept.Checkpoints[:n/2]), peak(swept.Checkpoints[n/2:])
			if second > first*rcGrowth {
				gateFail("reclaim gate: %s live/written ratio peak grew %.4f -> %.4f (limit %.2fx)",
					swept.Backend, first, second, rcGrowth)
			}
		}
		if rcMaxRatio > 0 && swept.Ratio > rcMaxRatio {
			gateFail("reclaim gate: %s final live/written ratio %.4f exceeds ceiling %.4f",
				swept.Backend, swept.Ratio, rcMaxRatio)
		}

		for _, r := range []reclaimRow{swept, unswept, durable} {
			gate := "ok"
			if r.Mode == "durable" {
				gate = "ok (recovered)"
			}
			fmt.Printf("%-7s | %-7s | %6d | %5d | %9d | %6d | %.4f | %9d | %s\n",
				r.Backend, r.Mode, r.Rounds, r.Steps, r.WrittenBytes, r.LiveBytes, r.Ratio,
				r.ReclaimedVersions, gate)
		}
		rows = append(rows, swept, unswept, durable)
	}

	f, err := os.Create(rcOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode(rows))
	must(f.Close())
	fmt.Printf("wrote %d rows to %s\n", len(rows), rcOut)
	// A stable line for scripts/reclaimgate.sh to ratchet on: the worst
	// final ratio across every sweep-enabled cell.
	maxRatio := 0.0
	for _, r := range rows {
		if r.Mode != "unswept" && r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
	}
	fmt.Printf("reclaim: max live/written ratio = %.4f\n", maxRatio)

	var md strings.Builder
	md.WriteString("### E17 reclaim: bounded-memory soak under deep rework\n\n")
	md.WriteString("| backend | mode | rounds | steps | written B | live B | ratio | reclaimed versions | reclaimed B |\n")
	md.WriteString("|:---|:---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&md, "| %s | %s | %d | %d | %d | %d | %.4f | %d | %d |\n",
			r.Backend, r.Mode, r.Rounds, r.Steps, r.WrittenBytes, r.LiveBytes, r.Ratio,
			r.ReclaimedVersions, r.ReclaimedBytes)
	}
	md.WriteString("\n")
	appendSummary(md.String())
}
