// benchtool regenerates the quantitative experiment tables recorded in
// EXPERIMENTS.md. All numbers are deterministic: workloads are seeded and
// execution time is the simulated cluster's virtual clock, so the tables
// reproduce bit-for-bit across runs and machines.
//
// Usage: benchtool [-exp all|speedup|remigration|scopecache|storage|rework|viewport|inference|abort|rebuild|faults|scale|replay|serve|workload|index]
//
// The scale (E11), serve (E13), workload (E15) and index (E16)
// experiments are the exceptions to pure virtual-time measurement: scale
// reports wall-clock throughput of the concurrent engine (steps/sec vs
// worker count at N sessions), serve reports wire latency and throughput
// of the papyrusd front-end under concurrent designer sessions, workload
// drives every generated scenario profile through both paths, and index
// races the version-store backends against each other, so none is part
// of -exp all. Their correctness columns — the stats and version-map
// fingerprints — are still bit-reproducible.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"papyrus/internal/activity"
	"papyrus/internal/attr"
	"papyrus/internal/baseline"
	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/fault"
	"papyrus/internal/history"
	"papyrus/internal/infer"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/reclaim"
	"papyrus/internal/sprite"
	"papyrus/internal/task"
	"papyrus/internal/templates"
	"papyrus/internal/viewport"
	"papyrus/internal/workload"
)

// fanoutTemplate is the E11 unit of work, now drawn from the workload
// generator; templates_test.go pins it byte-identical to the hand-written
// template every historical fingerprint was produced with.
var fanoutTemplate = workload.FanTemplate("Fanout4", 4)

// benchMetrics aggregates makespan observations across every experiment
// run in the process (bench.<case>.ticks histograms); -stats prints it.
// benchTracer is non-nil only under -trace and collects the typed event
// stream of every simulated system the experiments build.
var (
	benchMetrics = obs.NewRegistry()
	benchTracer  *obs.Tracer
	// benchFaults optionally replaces the last fault plan of the recovery
	// experiment (the -faults flag).
	benchFaults string
	// benchMem turns on per-cell allocation accounting (-benchmem):
	// runtime.MemStats deltas around each scale cell, reported as
	// allocs/step and bytes/step columns.
	benchMem bool
	// summaryPath is the -summary file: experiments append GitHub-flavored
	// markdown tables to it (CI points this at $GITHUB_STEP_SUMMARY).
	summaryPath string
	// benchBackend is the -backend flag: the object-store version-index
	// backend every experiment's stores are built on (docs/STORAGE.md).
	// Fingerprints are backend-invariant, so any setting must reproduce
	// the tables; -exp index races all backends regardless.
	benchBackend string
	// benchGateErrs collects threshold-gate violations. Gates record here
	// via gateFail instead of exiting on the spot so the deferred profile,
	// trace and summary writers flush first; main exits non-zero at the
	// very end if any gate tripped. Correctness failures (fingerprint
	// divergence, lost steps) still log.Fatal immediately — a wrong answer
	// has no profile worth keeping.
	benchGateErrs []string
)

// gateFail records a perf-gate violation and keeps going.
func gateFail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	log.Print(msg)
	benchGateErrs = append(benchGateErrs, msg)
}

// appendSummary appends one markdown section to the -summary file.
func appendSummary(section string) {
	if summaryPath == "" {
		return
	}
	f, err := os.OpenFile(summaryPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	must(err)
	_, err = f.WriteString(section)
	must(err)
	must(f.Close())
}

// measureVT records a system's final virtual clock under
// bench.<name>.ticks and returns it — the single timing path for
// experiment tables, replacing per-experiment Cluster.Now() bookkeeping.
func measureVT(name string, now int64) int64 {
	benchMetrics.Observe("bench."+name+".ticks", now)
	return now
}

// flagOrder is the order -h prints flags in: general switches first, then
// one block per experiment that takes flags (scale/E11, replay/E12,
// serve/E13). The stock alphabetical listing interleaved the blocks and
// stranded -memo between the replay switches.
var flagOrder = []string{
	"exp", "stats", "trace", "faults",
	"cpuprofile", "memprofile", "benchmem", "summary", "backend",
	"scalesessions", "scaleworkers", "scalelatency", "scalemin",
	"scaleregress", "allocmax",
	"scaleout", "scalewal", "scalefsync", "memo",
	"replayworkers", "replaymin", "replayout",
	"servesessions", "serveshards", "serveworkers", "servetenants",
	"serverate", "serveburst", "servequeue", "servemin", "servep99",
	"serveout",
	"wlprofiles", "wlseed", "wlsessions", "wldepth", "wlfanout",
	"wlworkers", "wlmin", "wlout",
	"ixprofiles", "ixbackends", "ixseed", "ixsessions", "ixdepth",
	"ixfanout", "ixworkers", "ixscans", "ixmin", "ixout",
	"rcbackends", "rcseed", "rcsessions", "rcdepth", "rcfanout",
	"rcworkers", "rcsweep", "rcbudget", "rcgrowth", "rcmaxratio", "rcout",
}

// usage replaces the default flag.Usage: same per-flag format, but in
// flagOrder instead of alphabetically. Flags missing from flagOrder are
// appended at the end so nothing ever drops out of -h.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "usage: benchtool [-exp all|speedup|remigration|scopecache|storage|rework|viewport|inference|abort|rebuild|faults|scale|replay|serve|workload|index|reclaim] [flags]")
	fmt.Fprintln(w, "\nflags:")
	seen := make(map[string]bool, len(flagOrder))
	order := flagOrder
	for _, n := range order {
		seen[n] = true
	}
	flag.VisitAll(func(f *flag.Flag) {
		if !seen[f.Name] {
			order = append(order, f.Name)
		}
	})
	for _, name := range order {
		f := flag.Lookup(name)
		if f == nil {
			continue
		}
		u := f.Usage
		if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
			u += " (default " + f.DefValue + ")"
		}
		fmt.Fprintf(w, "  -%s\n    \t%s\n", f.Name, u)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	stats := flag.Bool("stats", false, "print the aggregated metrics registry after the experiments")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file covering all runs")
	faults := flag.String("faults", "", "extra fault plan for the recovery experiment, e.g. seed=3,crash=2@60-500 (docs/FAULTS.md)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file at exit")
	flag.BoolVar(&benchMem, "benchmem", false, "measure allocations per scale cell (allocs/step, bytes/step columns)")
	flag.StringVar(&summaryPath, "summary", "", "append markdown result tables to this file (CI: $GITHUB_STEP_SUMMARY)")
	flag.StringVar(&benchBackend, "backend", "", "object-store version-index backend for every experiment: map, btree, or lsm (docs/STORAGE.md)")
	flag.StringVar(&scaleSessions, "scalesessions", "1,8,64", "comma-separated session counts for -exp scale")
	flag.StringVar(&scaleWorkers, "scaleworkers", "1,2,4,8", "comma-separated worker counts for -exp scale")
	flag.DurationVar(&scaleLatency, "scalelatency", 2*time.Millisecond, "injected wall-clock latency per tool body for -exp scale")
	flag.Float64Var(&scaleMin, "scalemin", 0, "fail (exit 1) if max-worker throughput is below this multiple of the 1-worker run at the largest session count")
	flag.Float64Var(&scaleRegress, "scaleregress", 0, "fail (exit 1) if any session count's max-worker throughput drops below this multiple of its best lower-worker cell (monotonicity gate)")
	flag.Float64Var(&scaleAllocMax, "allocmax", 0, "fail (exit 1) if the largest scale cell allocates more than this many heap objects per step (implies -benchmem)")
	flag.StringVar(&scaleOut, "scaleout", "BENCH_scale.json", "output file for the -exp scale table")
	flag.BoolVar(&scaleWAL, "scalewal", false, "run -exp scale with write-ahead logging enabled (fresh log dir per cell); fingerprints must still match")
	flag.Int64Var(&scaleFsync, "scalefsync", 1, "group-commit flush interval for -scalewal (<=1 fsyncs every append)")
	flag.BoolVar(&scaleMemo, "memo", false, "run -exp scale with the step-result cache enabled (fresh cache per cell); fingerprints must still match")
	flag.StringVar(&replayWorkers, "replayworkers", "1,8", "comma-separated worker counts for -exp replay")
	flag.Float64Var(&replayMin, "replaymin", 0, "fail (exit 1) if the memo-on replay speedup at the largest worker count is below this")
	flag.StringVar(&replayOut, "replayout", "BENCH_replay.json", "output file for the -exp replay table")
	flag.IntVar(&serveSessions, "servesessions", 256, "concurrent designer sessions for -exp serve")
	flag.IntVar(&serveShards, "serveshards", 4, "engine shards for -exp serve")
	flag.IntVar(&serveWorkers, "serveworkers", 8, "admission worker pool for -exp serve")
	flag.IntVar(&serveTenants, "servetenants", 16, "distinct tenants sessions are spread over for -exp serve")
	flag.Float64Var(&serveRate, "serverate", 0, "per-tenant admission rate limit for -exp serve (0 = unlimited)")
	flag.Float64Var(&serveBurst, "serveburst", 0, "per-tenant token-bucket burst for -exp serve (0 = max(1, rate))")
	flag.IntVar(&serveQueue, "servequeue", 1024, "admission queue bound before load shedding for -exp serve")
	flag.Float64Var(&serveMin, "servemin", 0, "fail (exit 1) if -exp serve sustains fewer steps/sec than this")
	flag.Float64Var(&serveP99, "servep99", 0, "fail (exit 1) if -exp serve task-submission p99 exceeds this many ms")
	flag.StringVar(&serveOut, "serveout", "BENCH_serve.json", "output file for the -exp serve table")
	flag.StringVar(&wlProfiles, "wlprofiles", "all", "comma-separated workload profiles for -exp workload (all = every profile)")
	flag.Int64Var(&wlSeed, "wlseed", 7, "workload generator seed for -exp workload")
	flag.IntVar(&wlSessions, "wlsessions", 4, "designer sessions per profile for -exp workload")
	flag.IntVar(&wlDepth, "wldepth", 6, "depth knob (rounds, chain length) for -exp workload")
	flag.IntVar(&wlFanout, "wlfanout", 4, "fanout knob (burst width, fan arity) for -exp workload")
	flag.StringVar(&wlWorkers, "wlworkers", "1,4", "comma-separated worker counts for -exp workload (fingerprints must be invariant)")
	flag.Float64Var(&wlMin, "wlmin", 0, "fail (exit 1) if any profile's best in-process cell is below this many steps/sec")
	flag.StringVar(&wlOut, "wlout", "BENCH_workload.json", "output file for the -exp workload table")
	flag.StringVar(&ixProfiles, "ixprofiles", "rework,interactive,collab", "comma-separated workload profiles for -exp index (read-heavy and write-heavy)")
	flag.StringVar(&ixBackends, "ixbackends", "map,btree,lsm", "comma-separated version-index backends for -exp index")
	flag.Int64Var(&ixSeed, "ixseed", 7, "workload generator seed for -exp index")
	flag.IntVar(&ixSessions, "ixsessions", 4, "designer sessions per profile for -exp index")
	flag.IntVar(&ixDepth, "ixdepth", 6, "depth knob (rounds, chain length) for -exp index")
	flag.IntVar(&ixFanout, "ixfanout", 4, "fanout knob (burst width, fan arity) for -exp index")
	flag.IntVar(&ixWorkers, "ixworkers", 4, "worker-pool size for -exp index cells")
	flag.IntVar(&ixScans, "ixscans", 64, "lineage-scan rounds over every object's version chain for -exp index")
	flag.Float64Var(&ixMin, "ixmin", 0, "fail (exit 1) if any index cell runs below this many steps/sec")
	flag.StringVar(&ixOut, "ixout", "BENCH_index.json", "output file for the -exp index table")
	flag.StringVar(&rcBackends, "rcbackends", "map,btree,lsm", "comma-separated version-index backends for -exp reclaim")
	flag.Int64Var(&rcSeed, "rcseed", 7, "workload generator seed for -exp reclaim")
	flag.IntVar(&rcSessions, "rcsessions", 4, "designer sessions for the -exp reclaim soak")
	flag.IntVar(&rcDepth, "rcdepth", 64, "rework depth (rounds = depth/8) for -exp reclaim")
	flag.IntVar(&rcFanout, "rcfanout", 4, "fanout knob for -exp reclaim")
	flag.IntVar(&rcWorkers, "rcworkers", 4, "worker-pool size for -exp reclaim cells")
	flag.IntVar(&rcSweep, "rcsweep", 1, "sweep at every Nth round barrier for -exp reclaim")
	flag.IntVar(&rcBudget, "rcbudget", 0, "index records scanned per sweep slice for -exp reclaim (0 = whole store)")
	flag.Float64Var(&rcGrowth, "rcgrowth", 0, "fail (exit 1) if the second-half peak live/written ratio exceeds the first-half peak by this factor (0 = off; needs -rcdepth >= 128)")
	flag.Float64Var(&rcMaxRatio, "rcmaxratio", 0, "fail (exit 1) if the final live/written ratio exceeds this ceiling (0 = off)")
	flag.StringVar(&rcOut, "rcout", "BENCH_reclaim.json", "output file for the -exp reclaim table")
	flag.Usage = usage
	flag.Parse()
	if _, err := oct.ParseBackend(benchBackend); err != nil {
		log.Fatal(err)
	}
	benchFaults = *faults
	if scaleAllocMax > 0 {
		benchMem = true
	}
	if *tracePath != "" {
		benchTracer = obs.NewTracer()
	}
	// Registered first so it runs LAST: every writer below (profiles,
	// trace, stats, summaries) must flush before a tripped gate exits.
	defer func() {
		if len(benchGateErrs) > 0 {
			log.Printf("benchtool: %d perf gate(s) failed", len(benchGateErrs))
			os.Exit(1)
		}
	}()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		must(err)
		must(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			must(f.Close())
			fmt.Printf("cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			must(err)
			runtime.GC() // settle the heap so the profile shows live objects
			must(pprof.WriteHeapProfile(f))
			must(f.Close())
			fmt.Printf("heap profile written to %s\n", *memProfile)
		}()
	}
	defer func() {
		if benchTracer != nil {
			f, err := os.Create(*tracePath)
			must(err)
			must(benchTracer.WriteChromeTrace(f))
			must(f.Close())
			fmt.Printf("trace: %d events written to %s\n", benchTracer.Len(), *tracePath)
		}
		if *stats {
			fmt.Println()
			must(benchMetrics.WriteText(os.Stdout))
		}
	}()
	run := map[string]func(){
		"speedup":     expSpeedup,
		"remigration": expReMigration,
		"scopecache":  expScopeCache,
		"storage":     expStorage,
		"rework":      expRework,
		"viewport":    expViewport,
		"inference":   expInference,
		"abort":       expAbort,
		"rebuild":     expRebuild,
		"faults":      expFaults,
		"scale":       expScale,
		"replay":      expReplay,
		"serve":       expServe,
		"workload":    expWorkload,
		"index":       expIndex,
		"reclaim":     expReclaim,
	}
	if *exp == "all" {
		for _, name := range []string{"speedup", "remigration", "scopecache", "storage", "rework", "viewport", "inference", "abort", "rebuild", "faults", "replay"} {
			run[name]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func newSystem(cfg core.Config) *core.System {
	cfg.Metrics = benchMetrics
	cfg.Trace = benchTracer
	if cfg.StoreBackend == "" {
		cfg.StoreBackend = benchBackend
	}
	sys, err := core.New(cfg)
	must(err)
	return sys
}

// newBenchStore builds a bare store on the -backend version index for
// the experiments that drive oct directly (baselines, VOV comparisons).
func newBenchStore() *oct.Store {
	st, err := oct.NewStoreWithOptions(oct.Options{Backend: oct.Backend(benchBackend)})
	must(err)
	return st
}

// backendLabel is the resolved -backend name for table rows: the
// default backend's name when the flag is unset.
func backendLabel() string {
	b, err := oct.ParseBackend(benchBackend)
	must(err)
	return string(b)
}

// --- Experiment: parallel speedup (Figs 4.2/4.3) ----------------------

func expSpeedup() {
	fmt.Println("## E1: task speedup vs cluster size (Figs 4.2/4.3, §4.3.2)")
	fmt.Println("nodes | Fanout4 ticks | speedup | Structure_Synthesis ticks | speedup | Mosaico ticks | speedup")

	runTask := func(nodes int, taskName string, inputs, outputs map[string]string, seed func(*core.System)) int64 {
		sys := newSystem(core.Config{Nodes: nodes, ReMigrateEvery: 25,
			ExtraTemplates: map[string]string{"Fanout4": fanoutTemplate}})
		seed(sys)
		th := sys.NewThread("bench", "u")
		_, err := sys.Invoke(th, taskName, inputs, outputs)
		must(err)
		return measureVT(fmt.Sprintf("speedup.%s.n%d", taskName, nodes), sys.Cluster.Now())
	}
	seedFan := func(sys *core.System) {
		for _, n := range []string{"a", "b", "c", "d"} {
			_, err := sys.ImportObject("/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
			must(err)
		}
	}
	seedSS := func(sys *core.System) {
		_, err := sys.ImportObject("/s", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
		must(err)
		_, err = sys.ImportObject("/c", oct.TypeText, oct.Text("set d0 1\nsim\nexpect q0 1\n"))
		must(err)
	}
	seedMo := func(sys *core.System) {
		_, err := sys.ImportObject("/m", oct.TypeBehavioral,
			oct.Text(logic.GenBehavior(logic.GenConfig{Seed: 7, Inputs: 6, Outputs: 4, Depth: 4})))
		must(err)
	}

	var base [3]int64
	for _, n := range []int{1, 2, 4, 8} {
		tf := runTask(n, "Fanout4",
			map[string]string{"A": "/a", "B": "/b", "C": "/c", "D": "/d"},
			map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"}, seedFan)
		ts := runTask(n, "Structure_Synthesis",
			map[string]string{"Incell": "/s", "Musa_Command": "/c"},
			map[string]string{"Outcell": "out", "Cell_Statistics": "st"}, seedSS)
		tm := runTask(n, "Mosaico",
			map[string]string{"Incell": "/m"},
			map[string]string{"Outcell": "out", "Cell_statistics": "st"}, seedMo)
		if n == 1 {
			base = [3]int64{tf, ts, tm}
		}
		fmt.Printf("%5d | %13d | %7.2f | %25d | %7.2f | %13d | %7.2f\n",
			n, tf, ratio(base[0], tf), ts, ratio(base[1], ts), tm, ratio(base[2], tm))
	}
}

func ratio(base, now int64) float64 { return float64(base) / float64(now) }

// --- Experiment: re-migration (§4.3.3) ---------------------------------

func expReMigration() {
	fmt.Println("## E2: eviction and re-migration (§4.3.3)")
	fmt.Println("re-migration | makespan (ticks) | total migrations")
	runCase := func(remigrate bool) (int64, int) {
		cluster, err := sprite.NewCluster(sprite.Config{Nodes: 4, MigrationDelay: 2,
			Metrics: benchMetrics, Tracer: benchTracer})
		must(err)
		// Nodes 1-3 are owned; owners are active until t=60, return
		// again during [400, 500).
		for n := 1; n <= 3; n++ {
			cluster.ScheduleOwnerActivity(sprite.NodeID(n), 0, 60)
			cluster.ScheduleOwnerActivity(sprite.NodeID(n), 400, 500)
		}
		store := newBenchStore()
		cfg := task.Config{
			Suite: cad.NewSuite(), Store: store, Cluster: cluster,
			Templates: templates.Source(map[string]string{"Fanout4": fanoutTemplate}),
			Metrics:   benchMetrics, Tracer: benchTracer,
		}
		if remigrate {
			cfg.ReMigrateEvery = 20
		}
		mgr, err := task.New(cfg)
		must(err)
		inputs := map[string]oct.Ref{}
		for _, n := range []string{"A", "B", "C", "D"} {
			obj, err := store.Put(n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(5)), "seed")
			must(err)
			inputs[n] = oct.Ref{Name: obj.Name, Version: obj.Version}
		}
		rec, err := mgr.RunTask(task.Invocation{
			Task: "Fanout4", Inputs: inputs,
			Outputs: map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"},
		})
		must(err)
		migrations := 0
		for _, s := range rec.Steps {
			migrations += s.Migrations
		}
		return measureVT(fmt.Sprintf("remigration.re=%v", remigrate), cluster.Now()), migrations
	}
	for _, re := range []bool{false, true} {
		t, m := runCase(re)
		fmt.Printf("%12v | %16d | %16d\n", re, t, m)
	}
}

// --- Experiment: data-scope caching (§5.3) ------------------------------

func expScopeCache() {
	fmt.Println("## E3: data-scope computation, cached vs uncached thread states (§5.3)")
	fmt.Println("history depth | records visited (no cache) | records visited (cache at midpoint)")
	for _, depth := range []int{50, 200, 800} {
		s := history.NewStream()
		var prev *history.Record
		var recs []*history.Record
		for i := 0; i < depth; i++ {
			r := &history.Record{TaskName: "t", Time: int64(i),
				Outputs: []oct.Ref{{Name: fmt.Sprintf("o%d", i), Version: 1}}}
			s.Append(r, prev)
			prev = r
			recs = append(recs, r)
		}
		tip := recs[depth-1]
		_, uncached := s.ThreadState(tip)
		s.CacheState(recs[depth/2])
		_, cached := s.ThreadState(tip)
		fmt.Printf("%13d | %27d | %36d\n", depth, uncached, cached)
	}
}

// --- Experiment: storage reclamation (§5.4, Figs 5.7-5.9) ---------------

func expStorage() {
	fmt.Println("## E4: single-assignment storage vs reclamation (§5.4, Fig 5.9)")
	fmt.Println("iterations | bytes (no reclamation) | bytes (iteration GC + sweep) | versions before | versions after")
	for _, rounds := range []int{4, 8, 16} {
		build := func() (*core.System, *activity.Thread, [][]*history.Record) {
			sys := newSystem(core.Config{Nodes: 2})
			_, err := sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
			must(err)
			_, err = sys.ImportObject("/cmd", oct.TypeText, oct.Text("set d0 1\nsim\n"))
			must(err)
			th := sys.NewThread("iter", "u")
			_, err = sys.Invoke(th, "create-logic-description",
				map[string]string{"Spec": "/spec"}, map[string]string{"Outlogic": "l"})
			must(err)
			var rr [][]*history.Record
			for i := 0; i < rounds; i++ {
				rec, err := sys.Invoke(th, "logic-simulator",
					map[string]string{"Inlogic": "l", "Commands": "/cmd"},
					map[string]string{"Report": "rep"})
				must(err)
				rr = append(rr, []*history.Record{rec})
			}
			return sys, th, rr
		}
		sysA, _, _ := build()
		without := sysA.Store.TotalBytes()

		sysB, th, rr := build()
		before := sysB.Store.ObjectCount()
		r := reclaim.New(sysB.Store, reclaim.Policy{Grace: 0})
		_, err := r.CollectIterations(th, reclaim.IterationHint{Rounds: rr})
		must(err)
		_, err = r.SweepObjects()
		must(err)
		with := sysB.Store.TotalBytes()
		after := sysB.Store.ObjectCount()
		fmt.Printf("%10d | %22d | %28d | %15d | %14d\n", rounds, without, with, before, after)
	}
}

// --- Experiment: rework vs retracing (§2.2.2 vs §3.3.3) ----------------

func expRework() {
	fmt.Println("## E5: exploring an alternative — Papyrus rework vs VOV retracing")
	fmt.Println("chain length | VOV tool re-runs after modify | Papyrus tool runs after rework (cursor move)")
	for _, chain := range []int{2, 4, 8} {
		// VOV: build a chain spec -> net -> o1 -> ... -> oN, then modify
		// the spec: everything downstream re-executes.
		suite := cad.NewSuite()
		store := newBenchStore()
		vov := baseline.NewVOV(suite, store)
		spec, err := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)), "designer")
		must(err)
		vov.Checkin("spec", spec)
		must(vov.Run("bdsyn", nil, []string{"spec"}, []string{"net"}))
		prev := "net"
		for i := 0; i < chain; i++ {
			out := fmt.Sprintf("o%d", i)
			must(vov.Run("misII", nil, []string{prev}, []string{out}))
			prev = out
		}
		spec2, err := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)), "designer")
		must(err)
		reruns, err := vov.Modify("spec", spec2)
		must(err)

		// Papyrus: the same chain as history; "trying the alternative"
		// is a cursor move — zero tool executions; the new branch runs
		// only the tools the designer invokes next.
		sys := newSystem(core.Config{Nodes: 2})
		_, err = sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
		must(err)
		th := sys.NewThread("t", "u")
		_, err = sys.Invoke(th, "create-logic-description",
			map[string]string{"Spec": "/spec"}, map[string]string{"Outlogic": "net"})
		must(err)
		recs := th.SortedRecords()
		must(th.MoveCursor(recs[0]))
		fmt.Printf("%12d | %29d | %44d\n", chain+1, reruns, 0)
	}
}

// --- Experiment: lazy viewport transforms (§5.2) ------------------------

func expViewport() {
	fmt.Println("## E6: pan/zoom maintenance — lazy compressed transform vs eager rewrite (§5.2)")
	fmt.Println("records | gestures | coordinate updates (eager) | coordinate updates (lazy)")
	for _, n := range []int{100, 1000, 10000} {
		gestures := 50
		// Eager rewrites every item's coordinates on each gesture.
		eagerUpdates := n * gestures
		// Lazy maintains one compressed transform.
		lazyUpdates := gestures
		// Verify both agree on a sample point before reporting.
		lv := viewport.NewView()
		ev := viewport.NewEagerView()
		for i := 0; i < n; i++ {
			p := viewport.Point{X: float64(i % 37), Y: float64(i / 37)}
			lv.Add(i, p)
			ev.Add(i, p)
		}
		for g := 0; g < gestures; g++ {
			if g%3 == 0 {
				lv.Zoom(2)
				ev.Zoom(2)
			} else {
				lv.Pan(5, -3)
				ev.Pan(5, -3)
			}
			if g%2 == 1 {
				lv.Zoom(0.5)
				ev.Zoom(0.5)
			}
		}
		lp, _ := lv.Position(n / 2)
		ep, _ := ev.Position(n / 2)
		if lp != ep {
			log.Fatalf("viewport divergence: %+v vs %+v", lp, ep)
		}
		fmt.Printf("%7d | %8d | %26d | %25d\n", n, gestures, eagerUpdates, lazyUpdates)
	}
}

// --- Experiment: incremental metadata inference (§6.4.1) ----------------

func expInference() {
	fmt.Println("## E7: propagated-attribute evaluation — incremental vs full (Fig 6.5, §6.4.1)")
	fmt.Println("hierarchy leaves | leaf evaluations after 1 leaf update (incremental) | (full re-evaluation)")
	for _, leaves := range []int{16, 64, 256} {
		count := 0
		adb := attr.New(func(a string, obj *oct.Object) (string, error) {
			count++
			return "1", nil
		})
		suite := cad.NewSuite()
		store := newBenchStore()
		eng := infer.NewEngine(suite, store, adb)
		// A binary configuration tree over `leaves` leaf cells.
		var build func(lo, hi int) oct.Ref
		id := 0
		build = func(lo, hi int) oct.Ref {
			id++
			name := fmt.Sprintf("n%d", id)
			ref := oct.Ref{Name: name, Version: 1}
			if hi-lo == 1 {
				adb.Set(ref, "power", "3", "")
				return ref
			}
			mid := (lo + hi) / 2
			l := build(lo, mid)
			r := build(mid, hi)
			eng.AddConfiguration(l, ref, "compose")
			eng.AddConfiguration(r, ref, "compose")
			return ref
		}
		root := build(0, leaves)
		_, err := eng.PropagatedAttr(root, "power")
		must(err)

		// Update one leaf: incremental invalidation re-evaluates only the
		// path to the root. Count composite evaluations by instrumenting
		// with a fresh counter pass.
		leaf := oct.Ref{Name: "n2", Version: 1} // leftmost descent
		// Find an actual leaf: walk down the left spine.
		cur := root
		for {
			comps := eng.RelatedBy(infer.RelConfiguration, cur)
			if len(comps) == 0 {
				leaf = cur
				break
			}
			cur = comps[0]
		}
		adb.Set(leaf, "power", "5", "")
		incr := countCompositeEvals(eng, root, leaf, false)
		full := countCompositeEvals(eng, root, leaf, true)
		fmt.Printf("%16d | %50d | %20d\n", leaves, incr, full)
	}
}

// countCompositeEvals measures how many composite nodes get recomputed
// after invalidation: incremental invalidates the leaf's ancestor path,
// full invalidates everything.
func countCompositeEvals(eng *infer.Engine, root, leaf oct.Ref, full bool) int {
	if full {
		eng.InvalidateAll()
	} else {
		eng.AddConfiguration(leaf, parentOf(eng, leaf), "compose") // re-link triggers invalidateUp
	}
	return eng.CountedPropagate(root, "power")
}

func parentOf(eng *infer.Engine, child oct.Ref) oct.Ref {
	for _, r := range eng.Relationships(child) {
		if r.Kind == infer.RelConfiguration && r.From == child {
			return r.To
		}
	}
	return child
}

// --- Experiment: programmable abort (Fig 3.4, §4.3.4) -------------------

func expAbort() {
	fmt.Println("## E8: programmable abort — work preserved by resumed task states (Fig 3.4)")
	fmt.Println("abort policy | tool executions to finish after one failure")
	runCase := func(resumed string) int {
		execs := 0
		sys := newSystem(core.Config{Nodes: 2, ExtraTemplates: map[string]string{
			"Frag": fmt.Sprintf(`task Frag {A} {Out}
step {1 Build} {A} {m1} {bdsyn -o m1 A}
step {2 Optimize} {m1} {m2} {misII -o m2 m1}
step {3 Finish} {m2} {Out} {flaky -o Out m2} {ResumedStep %s}
`, resumed),
		}})
		attempts := 0
		sys.Suite.Register(&cad.Tool{
			Name: "flaky", Brief: "fails once", Man: "test tool",
			TSD:  cad.TSD{Writes: oct.TypeLogic},
			Cost: func(in []*oct.Object, o []string) float64 { return 10 },
			Run: func(ctx *cad.Ctx) error {
				attempts++
				if attempts == 1 {
					return fmt.Errorf("transient failure")
				}
				return ctx.PutOutput(0, oct.TypeLogic, ctx.Inputs[0].Data)
			},
		})
		// Count executions of every tool by wrapping the suite's bdsyn/misII.
		for _, name := range []string{"bdsyn", "misII"} {
			orig, _ := sys.Suite.Tool(name)
			origRun := orig.Run
			tool := *orig
			tool.Run = func(ctx *cad.Ctx) error {
				execs++
				return origRun(ctx)
			}
			sys.Suite.Register(&tool)
		}
		_, err := sys.ImportObject("/a", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
		must(err)
		th := sys.NewThread("t", "u")
		_, err = sys.Invoke(th, "Frag",
			map[string]string{"A": "/a"}, map[string]string{"Out": "out"})
		must(err)
		return execs + attempts
	}
	fmt.Printf("%12s | %d\n", "ResumedStep 2", runCase("2"))
	fmt.Printf("%12s | %d\n", "ResumedStep 0", runCase("0"))
}

// --- Experiment: demand-driven rebuild vs retracing (§1.4 extension) ----

func expRebuild() {
	fmt.Println("## E9: source edit on a fan-out DAG — demand-driven rebuild vs VOV retracing")
	fmt.Println("derived objects | VOV retrace tool re-runs | Papyrus Rebuild(one target) tool re-runs")
	for _, fanout := range []int{2, 4, 8} {
		// Shared shape: spec -> net, then `fanout` independent misII
		// derivatives of net. Editing spec invalidates everything; the
		// designer only needs one derivative refreshed.
		suite := cad.NewSuite()
		store := newBenchStore()
		vov := baseline.NewVOV(suite, store)
		spec, err := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)), "d")
		must(err)
		vov.Checkin("spec", spec)
		must(vov.Run("bdsyn", nil, []string{"spec"}, []string{"net"}))
		for i := 0; i < fanout; i++ {
			must(vov.Run("misII", nil, []string{"net"}, []string{fmt.Sprintf("d%d", i)}))
		}
		spec2, err := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)), "d")
		must(err)
		retrace, err := vov.Modify("spec", spec2)
		must(err)

		// Papyrus: same DAG recorded by the inference engine; rebuild
		// exactly one derivative.
		sys := newSystem(core.Config{Nodes: 2, ExtraTemplates: map[string]string{
			"Fan": fanTemplate(fanout),
		}})
		_, err = sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
		must(err)
		th := sys.NewThread("t", "u")
		outputs := map[string]string{}
		for i := 0; i < fanout; i++ {
			outputs[fmt.Sprintf("D%d", i)] = fmt.Sprintf("d%d", i)
		}
		_, err = sys.Invoke(th, "Fan", map[string]string{"A": "/spec"}, outputs)
		must(err)
		_, err = sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
		must(err)
		target, err := th.ResolveInput("d0")
		must(err)
		before := sys.Store.ObjectCount()
		_, err = sys.Rebuild(target)
		must(err)
		rebuilt := sys.Store.ObjectCount() - before // new versions == tool runs here
		fmt.Printf("%15d | %24d | %41d\n", fanout+1, retrace, rebuilt)
	}
}

// --- Experiment: fault injection and recovery (docs/FAULTS.md) ----------

func expFaults() {
	fmt.Println("## E10: fault injection and recovery — retry + re-migration under a seeded fault plan")
	fmt.Println("fault plan | makespan (ticks) | retries | crashkills | migrations | committed")
	plans := []string{
		"seed=7",
		"seed=7,stepfail=*:0.4:2",
		"seed=7,crash=1@40-600",
		"seed=7,stall=0.5:25",
		"seed=7,crash=1@40-600,stepfail=*:0.3:2,stall=0.5:25",
	}
	if benchFaults != "" {
		plans = append(plans, benchFaults)
	}
	for i, planText := range plans {
		plan, err := fault.ParsePlan(planText)
		must(err)
		retryBefore := benchMetrics.Counter("task.step.retry")
		crashBefore := benchMetrics.Counter("sprite.proc.crashkill")
		sys := newSystem(core.Config{
			Nodes: 4, ReMigrateEvery: 20,
			ExtraTemplates: map[string]string{"Fanout4": fanoutTemplate},
			Fault:          &plan,
			Retry:          task.RetryPolicy{MaxAttempts: 4, BackoffBase: 8},
		})
		inputs := map[string]string{}
		for _, n := range []string{"A", "B", "C", "D"} {
			_, err := sys.ImportObject("/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(5)))
			must(err)
			inputs[n] = "/" + n
		}
		th := sys.NewThread("faults", "u")
		rec, err := sys.Invoke(th, "Fanout4", inputs,
			map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"})
		migrations := 0
		if rec != nil {
			for _, s := range rec.Steps {
				migrations += s.Migrations
			}
		}
		makespan := measureVT(fmt.Sprintf("faults.case%d", i), sys.Cluster.Now())
		fmt.Printf("%-52s | %16d | %7d | %10d | %10d | %v\n",
			planText, makespan,
			benchMetrics.Counter("task.step.retry")-retryBefore,
			benchMetrics.Counter("sprite.proc.crashkill")-crashBefore,
			migrations, err == nil)
	}
}

// --- Experiment: concurrent multi-session scaling (E11) -----------------

var (
	scaleSessions string
	scaleWorkers  string
	scaleLatency  time.Duration
	scaleMin      float64
	scaleRegress  float64
	scaleAllocMax float64
	scaleOut      string
	scaleWAL      bool
	scaleFsync    int64
	scaleMemo     bool
)

// statsSHA fingerprints a registry export with the memo.* namespace
// filtered out — the one namespace permitted to differ between memo-on
// and memo-off runs of the same workload (docs/CACHING.md). Memo-off
// registries have no memo.* entries, so their fingerprint is unchanged
// by the filter.
func statsSHA(reg *obs.Registry) string {
	var b strings.Builder
	must(reg.WriteTextFiltered(&b, func(name string) bool {
		return !strings.HasPrefix(name, "memo.")
	}))
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// scaleRow is one (sessions, workers) cell of BENCH_scale.json.
type scaleRow struct {
	Sessions int `json:"sessions"`
	Workers  int `json:"workers"`
	// Backend is the store's version-index backend (-backend flag); the
	// fingerprints must not depend on it (docs/STORAGE.md).
	Backend     string  `json:"backend"`
	Steps       int64   `json:"steps"`
	WallMS      float64 `json:"wall_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	SpeedupVs1  float64 `json:"speedup_vs_1_worker"`
	// StatsSHA and VersionSHA fingerprint the metrics export and the
	// final OCT version map; within one session count they must match
	// across every worker count and across repeated runs.
	StatsSHA   string `json:"stats_sha256"`
	VersionSHA string `json:"version_sha256"`
	// StripeContention is the store's contended-lock count — an
	// informational, scheduling-dependent probe excluded from the
	// fingerprints (docs/OBSERVABILITY.md).
	StripeContention int64 `json:"oct_stripe_contention"`
	// AllocsPerStep/BytesPerStep are runtime.MemStats deltas over the cell
	// divided by completed steps; populated only under -benchmem. Like
	// wall-clock they are host-dependent (GC timing, pool hit rates) and
	// excluded from the fingerprints.
	AllocsPerStep float64 `json:"allocs_per_step,omitempty"`
	BytesPerStep  float64 `json:"bytes_per_step,omitempty"`
}

// runScaleCell executes N independent Fanout4 sessions against one shared
// store with the given worker count and returns the measured row.
func runScaleCell(sessions, workers int) scaleRow {
	reg := obs.NewRegistry()
	cfg := core.Config{
		Nodes:            4,
		Workers:          workers,
		StepLatency:      scaleLatency,
		DisableInference: true,
		Metrics:          reg,
		StoreBackend:     benchBackend,
		ExtraTemplates:   map[string]string{"Fanout4": fanoutTemplate},
	}
	if scaleWAL {
		// A fresh log per cell: the point is the durability overhead and
		// the invariance of the fingerprints, not the log's content.
		dir, err := os.MkdirTemp("", "papyrus-scale-wal-")
		must(err)
		defer os.RemoveAll(dir)
		cfg.Durability = &core.DurabilityConfig{Dir: dir, FsyncEvery: scaleFsync}
	}
	if scaleMemo {
		// A fresh cache per cell keeps the workload all-miss: the point is
		// that keying and populating change no fingerprint, not hit speed.
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	must(err)
	specs := make([]core.SessionSpec, sessions)
	for i := range specs {
		i := i
		specs[i] = core.SessionSpec{
			Name: fmt.Sprintf("s%d", i),
			Run: func(s *core.Session) error {
				inputs := map[string]oct.Ref{}
				for _, n := range []string{"A", "B", "C", "D"} {
					obj, err := sys.Store.Put(fmt.Sprintf("/s%d/%s", s.Index, n),
						oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)), "seed")
					if err != nil {
						return err
					}
					inputs[n] = oct.Ref{Name: obj.Name, Version: obj.Version}
				}
				outputs := map[string]string{}
				for _, o := range []string{"O1", "O2", "O3", "O4"} {
					outputs[o] = fmt.Sprintf("/s%d/%s", s.Index, strings.ToLower(o))
				}
				rec, err := s.Tasks.RunTask(task.Invocation{
					Task: "Fanout4", Inputs: inputs, Outputs: outputs,
				})
				if err != nil {
					return err
				}
				if len(rec.Steps) != 4 {
					return fmt.Errorf("session %d: %d steps recorded, want 4", s.Index, len(rec.Steps))
				}
				return nil
			},
		}
	}
	var memBefore runtime.MemStats
	if benchMem {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	start := time.Now()
	_, err = sys.RunSessions(specs)
	wall := time.Since(start)
	var memAfter runtime.MemStats
	if benchMem {
		runtime.ReadMemStats(&memAfter)
	}
	must(err)
	must(sys.Close())

	steps := reg.Counter("task.step.complete")
	row := scaleRow{
		Sessions:         sessions,
		Workers:          workers,
		Backend:          backendLabel(),
		Steps:            steps,
		WallMS:           float64(wall.Microseconds()) / 1000,
		StepsPerSec:      float64(steps) / wall.Seconds(),
		StatsSHA:         statsSHA(reg),
		VersionSHA:       fmt.Sprintf("%x", sha256.Sum256([]byte(sys.Store.VersionMapText()))),
		StripeContention: sys.Store.StripeContention(),
	}
	if benchMem && steps > 0 {
		row.AllocsPerStep = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(steps)
		row.BytesPerStep = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(steps)
	}
	return row
}

// expScale is E11: wall-clock throughput of the concurrent engine vs
// worker count at N independent sessions over one shared striped store.
// Before measuring, every session count's 1-worker cell is run twice and
// every other worker count once; all fingerprints within a session count
// must agree — a violated invariant is a hard failure, not a table row.
func expScale() {
	fmt.Println("## E11: multi-session scaling — steps/sec vs workers over the shared striped store")
	fmt.Printf("(step latency %v per tool body; fingerprints must match within each session row)\n", scaleLatency)
	if scaleWAL {
		fmt.Printf("(write-ahead logging ON, fsync-every=%d — fingerprints must match the durability-free contract)\n", scaleFsync)
	}
	if scaleMemo {
		fmt.Println("(step-result cache ON, fresh per cell — filtered fingerprints must match the memo-free contract)")
	}
	fmt.Println("sessions | workers | steps | wall ms | steps/sec | speedup | fingerprints")
	sessionCounts := parseIntList(scaleSessions)
	workerCounts := parseIntList(scaleWorkers)
	var rows []scaleRow
	var largest scaleRow
	for _, n := range sessionCounts {
		// Repeat-run determinism check at 1 worker.
		warm := runScaleCell(n, 1)
		base := runScaleCell(n, 1)
		if warm.StatsSHA != base.StatsSHA || warm.VersionSHA != base.VersionSHA {
			log.Fatalf("scale: sessions=%d: repeated 1-worker runs disagree (stats %s vs %s, versions %s vs %s)",
				n, warm.StatsSHA[:12], base.StatsSHA[:12], warm.VersionSHA[:12], base.VersionSHA[:12])
		}
		var best scaleRow
		sessionStart := len(rows)
		for _, w := range workerCounts {
			row := base
			if w != 1 {
				row = runScaleCell(n, w)
			}
			if row.StatsSHA != base.StatsSHA || row.VersionSHA != base.VersionSHA {
				log.Fatalf("scale: sessions=%d workers=%d: export diverged from 1-worker run (stats %s vs %s, versions %s vs %s)",
					n, w, row.StatsSHA[:12], base.StatsSHA[:12], row.VersionSHA[:12], base.VersionSHA[:12])
			}
			row.SpeedupVs1 = row.StepsPerSec / base.StepsPerSec
			if w >= best.Workers {
				best = row
			}
			rows = append(rows, row)
			fmt.Printf("%8d | %7d | %5d | %7.1f | %9.1f | %7.2f | ok (%s/%s)\n",
				n, w, row.Steps, row.WallMS, row.StepsPerSec, row.SpeedupVs1,
				row.StatsSHA[:12], row.VersionSHA[:12])
		}
		largest = best
		if scaleMin > 0 && n == sessionCounts[len(sessionCounts)-1] && best.SpeedupVs1 < scaleMin {
			gateFail("scale gate: sessions=%d workers=%d speedup %.2f < required %.2f",
				n, best.Workers, best.SpeedupVs1, scaleMin)
		}
		// Monotonicity gate: adding workers must never cost throughput.
		// The max-worker cell has to hold scaleRegress x the best
		// lower-worker cell of the same session count.
		if scaleRegress > 0 {
			var lowerBest float64
			for _, r := range rows[sessionStart:] {
				if r.Workers < best.Workers && r.StepsPerSec > lowerBest {
					lowerBest = r.StepsPerSec
				}
			}
			if lowerBest > 0 && best.StepsPerSec < scaleRegress*lowerBest {
				gateFail("scale regression gate: sessions=%d: workers=%d ran %.1f steps/sec, %.2fx the best lower-worker cell (%.1f) — floor %.2f",
					n, best.Workers, best.StepsPerSec, best.StepsPerSec/lowerBest, lowerBest, scaleRegress)
			}
		}
	}
	f, err := os.Create(scaleOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode(rows))
	must(f.Close())
	fmt.Printf("wrote %d rows to %s\n", len(rows), scaleOut)
	if benchMem {
		// Greppable perf line for scripts/perfgate.sh: the largest cell's
		// allocation cost per completed step.
		fmt.Printf("perf: allocs/step = %.0f bytes/step = %.0f (sessions=%d workers=%d)\n",
			largest.AllocsPerStep, largest.BytesPerStep, largest.Sessions, largest.Workers)
		if scaleAllocMax > 0 && largest.AllocsPerStep > scaleAllocMax {
			gateFail("alloc gate: sessions=%d workers=%d allocated %.0f objects/step > ceiling %.0f",
				largest.Sessions, largest.Workers, largest.AllocsPerStep, scaleAllocMax)
		}
	}
	var md strings.Builder
	md.WriteString("### E11 scale: steps/sec vs workers\n\n")
	md.WriteString("| sessions | workers | backend | steps | steps/sec | speedup vs 1w |")
	if benchMem {
		md.WriteString(" allocs/step |")
	}
	md.WriteString("\n|---:|---:|:---|---:|---:|---:|")
	if benchMem {
		md.WriteString("---:|")
	}
	md.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&md, "| %d | %d | %s | %d | %.1f | %.2f |", r.Sessions, r.Workers, r.Backend, r.Steps, r.StepsPerSec, r.SpeedupVs1)
		if benchMem {
			fmt.Fprintf(&md, " %.0f |", r.AllocsPerStep)
		}
		md.WriteString("\n")
	}
	md.WriteString("\n")
	appendSummary(md.String())
}

// --- Experiment: rework replay with memoization (E12) -------------------

var (
	replayWorkers string
	replayMin     float64
	replayOut     string
)

// replayChainTemplate threads two intermediates (m1, m2) through the
// chain, so replay hits depend on instance-suffix normalization and
// content-addressed version tokens (docs/CACHING.md), not just stable
// input names. Drawn from the workload generator; templates_test.go pins
// the bytes against the original hand-written template.
var replayChainTemplate = workload.ChainTemplate("ReplayChain", []string{"Build", "Optimize", "Finish"})

// replayRow is one (workers, memo) cell of BENCH_replay.json.
type replayRow struct {
	Workers int  `json:"workers"`
	Memo    bool `json:"memo"`
	// Backend is the store's version-index backend (-backend flag).
	Backend     string  `json:"backend"`
	FirstTicks  int64   `json:"first_run_ticks"`
	ReplayTicks int64   `json:"replay_ticks"`
	Speedup     float64 `json:"replay_speedup"`
	MemoHits    int64   `json:"memo_hits"`
	MemoMisses  int64   `json:"memo_misses"`
	// StatsSHA is the memo-filtered metrics fingerprint: constant across
	// worker counts within a memo setting. VersionSHA is the final OCT
	// version map: constant across every cell — memoized replay must
	// produce byte-identical store content to re-running the tools.
	StatsSHA   string `json:"stats_sha256"`
	VersionSHA string `json:"version_sha256"`
}

// runReplayCell runs the E12 workload once: a fan-out task plus an
// intermediate chain, then a cursor move back to the initial state and a
// redo of both records (§3.3.3). Returns the measured cell.
func runReplayCell(workers int, withMemo bool) replayRow {
	reg := obs.NewRegistry()
	cfg := core.Config{
		Nodes: 4, Workers: workers, DisableInference: true, Metrics: reg,
		StoreBackend: benchBackend,
		ExtraTemplates: map[string]string{
			"Fanout4":     fanoutTemplate,
			"ReplayChain": replayChainTemplate,
		},
	}
	if withMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	must(err)
	for _, n := range []string{"a", "b", "c", "d"} {
		_, err := sys.ImportObject("/replay/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
		must(err)
	}
	th := sys.NewThread("replay", "u")
	recFan, err := sys.Invoke(th, "Fanout4",
		map[string]string{"A": "/replay/a", "B": "/replay/b", "C": "/replay/c", "D": "/replay/d"},
		map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"})
	must(err)
	recChain, err := sys.Invoke(th, "ReplayChain",
		map[string]string{"A": "/replay/a"}, map[string]string{"Out": "chain.out"})
	must(err)
	first := measureVT(fmt.Sprintf("replay.first.w%d.memo=%v", workers, withMemo), sys.Cluster.Now())

	// Rework: back to the initial design state, then redo both records.
	must(th.MoveCursor(nil))
	_, err = sys.Activity.ReplayRecord(th, recFan)
	must(err)
	_, err = sys.Activity.ReplayRecord(th, recChain)
	must(err)
	replay := sys.Cluster.Now() - first
	benchMetrics.Observe(fmt.Sprintf("bench.replay.redo.w%d.memo=%v.ticks", workers, withMemo), replay)

	return replayRow{
		Workers:     workers,
		Memo:        withMemo,
		Backend:     backendLabel(),
		FirstTicks:  first,
		ReplayTicks: replay,
		Speedup:     float64(first) / float64(max64(1, replay)),
		MemoHits:    reg.Counter("memo.hit"),
		MemoMisses:  reg.Counter("memo.miss"),
		StatsSHA:    statsSHA(reg),
		VersionSHA:  fmt.Sprintf("%x", sha256.Sum256([]byte(sys.Store.VersionMapText()))),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// expReplay is E12: virtual-tick cost of redoing work after a cursor
// move, with and without the step-result cache. The version-map
// fingerprint must be identical across every cell — memoization may only
// change how fast the store reaches a state, never which state — and the
// memo-filtered stats fingerprint must be worker-count invariant within
// each memo setting.
func expReplay() {
	fmt.Println("## E12: rework replay — redo cost after a cursor move, memo off vs on")
	fmt.Println("workers | memo | first run (ticks) | replay (ticks) | speedup | hits | misses | fingerprints")
	workerCounts := parseIntList(replayWorkers)
	var rows []replayRow
	var gate replayRow
	for _, withMemo := range []bool{false, true} {
		var base replayRow
		for i, w := range workerCounts {
			row := runReplayCell(w, withMemo)
			if i == 0 {
				base = row
			}
			if row.StatsSHA != base.StatsSHA {
				log.Fatalf("replay: memo=%v workers=%d: stats fingerprint diverged from workers=%d (%s vs %s)",
					withMemo, w, base.Workers, row.StatsSHA[:12], base.StatsSHA[:12])
			}
			if len(rows) > 0 && row.VersionSHA != rows[0].VersionSHA {
				log.Fatalf("replay: memo=%v workers=%d: version map diverged from the memo-off reference (%s vs %s)",
					withMemo, w, row.VersionSHA[:12], rows[0].VersionSHA[:12])
			}
			rows = append(rows, row)
			if withMemo {
				gate = row
			}
			fmt.Printf("%7d | %4v | %17d | %14d | %7.2f | %4d | %6d | ok (%s/%s)\n",
				w, withMemo, row.FirstTicks, row.ReplayTicks, row.Speedup,
				row.MemoHits, row.MemoMisses, row.StatsSHA[:12], row.VersionSHA[:12])
		}
	}
	f, err := os.Create(replayOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode(rows))
	must(f.Close())
	fmt.Printf("wrote %d rows to %s\n", len(rows), replayOut)
	if replayMin > 0 && gate.Speedup < replayMin {
		gateFail("replay gate: workers=%d memo=on speedup %.2f < required %.2f",
			gate.Workers, gate.Speedup, replayMin)
	}
	var md strings.Builder
	md.WriteString("### E12 replay: redo cost after a cursor move\n\n")
	md.WriteString("| workers | memo | backend | first run (ticks) | replay (ticks) | speedup | hits | misses |\n")
	md.WriteString("|---:|:---:|:---|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&md, "| %d | %v | %s | %d | %d | %.2f | %d | %d |\n",
			r.Workers, r.Memo, r.Backend, r.FirstTicks, r.ReplayTicks, r.Speedup, r.MemoHits, r.MemoMisses)
	}
	md.WriteString("\n")
	appendSummary(md.String())
}

func parseIntList(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			log.Fatalf("bad count %q in list %q", part, s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		log.Fatal("empty count list")
	}
	return out
}

func fanTemplate(fanout int) string {
	s := "task Fan {A} {"
	for i := 0; i < fanout; i++ {
		s += fmt.Sprintf("D%d ", i)
	}
	s += "}\nstep S0 {A} {net} {bdsyn -o net A}\n"
	for i := 0; i < fanout; i++ {
		s += fmt.Sprintf("step S%d {net} {D%d} {misII -o D%d net}\n", i+1, i, i)
	}
	return s
}
