package main

// Pins the E11/E12 task templates, now drawn from the workload
// generator, to the exact bytes of the original hand-written constants.
// Every historical fingerprint in EXPERIMENTS.md was produced with these
// bytes; a constructor change that altered them would silently invalidate
// the tables.

import "testing"

func TestFanoutTemplateBytesPinned(t *testing.T) {
	const want = `task Fanout4 {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {misII -o O1 A}
step S2 {B} {O2} {misII -o O2 B}
step S3 {C} {O3} {misII -o O3 C}
step S4 {D} {O4} {misII -o O4 D}
`
	if fanoutTemplate != want {
		t.Errorf("FanTemplate(\"Fanout4\", 4) drifted from the E11 bytes:\n%s\nwant:\n%s", fanoutTemplate, want)
	}
}

func TestReplayChainTemplateBytesPinned(t *testing.T) {
	const want = `task ReplayChain {A} {Out}
step {1 Build} {A} {m1} {bdsyn -o m1 A}
step {2 Optimize} {m1} {m2} {misII -o m2 m1}
step {3 Finish} {m2} {Out} {misII -o Out m2}
`
	if replayChainTemplate != want {
		t.Errorf("ChainTemplate(\"ReplayChain\", ...) drifted from the E12 bytes:\n%s\nwant:\n%s", replayChainTemplate, want)
	}
}
