package main

// serve.go is E13: the served-system load generator. It boots a papyrusd
// server (internal/server) in-process on a loopback listener and drives
// N concurrent designer sessions through the wire path with
// internal/client — open session, import seed objects, submit a TDL
// task through admission control, read back history, close — measuring
// wire latency (p50/p99 per request class) and sustained engine
// throughput (steps/sec). The workload is seeded and per-session
// namespaced, so the per-shard version maps it leaves behind are
// byte-identical across runs; wall-clock latency is the one
// host-dependent column (EXPERIMENTS.md E13, like E11).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"papyrus/internal/client"
	"papyrus/internal/obs"
	"papyrus/internal/server"
)

var (
	serveSessions int
	serveShards   int
	serveWorkers  int
	serveTenants  int
	serveRate     float64
	serveBurst    float64
	serveQueue    int
	serveMin      float64
	serveP99      float64
	serveOut      string
)

// serveRow is the E13 result table (one row per run, plus the JSON file
// carries the per-request-class latency breakdown).
type serveRow struct {
	Sessions int `json:"sessions"`
	Shards   int `json:"shards"`
	Workers  int `json:"workers"`
	Tenants  int `json:"tenants"`
	// Steps and StepsPerSec measure engine work completed through the
	// wire; WallMS is the whole drive.
	Steps       int64   `json:"steps"`
	WallMS      float64 `json:"wall_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// TaskP50MS/TaskP99MS are the task-submission wire latencies — the
	// full path: admission queue, engine, JSON encode.
	TaskP50MS float64 `json:"task_p50_ms"`
	TaskP99MS float64 `json:"task_p99_ms"`
	// AllP50MS/AllP99MS cover every request class.
	AllP50MS float64 `json:"all_p50_ms"`
	AllP99MS float64 `json:"all_p99_ms"`
	// Throttled and Shed count admission-control rejections the clients
	// retried through; Retries is the client-side retry total.
	Throttled int64 `json:"throttled"`
	Shed      int64 `json:"shed"`
	Retries   int64 `json:"retries"`
	// VersionSHA fingerprints the concatenated per-shard version maps:
	// the workload is deterministic, so repeated runs must match.
	VersionSHA string `json:"version_sha256"`
}

// expServe is E13. Latency is measured client-side around each wire
// call and recorded in microsecond histograms; quantiles come from
// obs.HistogramSnapshot.Quantile.
func expServe() {
	fmt.Println("## E13: served-system load — concurrent designer sessions through the papyrusd wire path")
	fmt.Printf("(%d sessions over %d tenants, %d shards, %d admission workers; latency is wall-clock, fingerprint is deterministic)\n",
		serveSessions, serveTenants, serveShards, serveWorkers)

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Shards:           serveShards,
		Nodes:            4,
		DisableInference: true,
		ExtraTemplates:   map[string]string{"Fanout4": fanoutTemplate},
		Admission: server.AdmissionConfig{
			RatePerSec: serveRate,
			Burst:      serveBurst,
			MaxQueue:   serveQueue,
			Workers:    serveWorkers,
		},
		Metrics: reg,
	})
	must(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Client-side latency histograms, microseconds.
	lat := obs.NewRegistry()
	usBuckets := []int64{100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200,
		102400, 204800, 409600, 819200, 1638400, 3276800, 6553600, 13107200, 26214400}
	for _, h := range []string{"e13.open.us", "e13.import.us", "e13.task.us", "e13.history.us", "e13.close.us", "e13.all.us"} {
		lat.SetBuckets(h, usBuckets)
	}
	var retries int64
	var retriesMu sync.Mutex
	timed := func(name string, f func() error) error {
		start := time.Now()
		err := f()
		us := time.Since(start).Microseconds()
		lat.Observe(name, us)
		lat.Observe("e13.all.us", us)
		return err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, serveSessions)
	for i := 0; i < serveSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := client.New(base)
			// The load generator must finish every session even under a
			// deliberately tight -serverate: give throttled submits a deep
			// retry budget with a trimmed backoff.
			cl.RetryBudget = 100
			cl.Backoff = func(hint time.Duration) {
				retriesMu.Lock()
				retries++
				retriesMu.Unlock()
				time.Sleep(hint / 4) // trimmed backoff keeps the drive moving
			}
			tenant := fmt.Sprintf("t%02d", i%serveTenants)
			ns := fmt.Sprintf("/e13/%s/s%d", tenant, i)
			var info server.SessionInfo
			run := func() error {
				if err := timed("e13.open.us", func() error {
					var err error
					info, err = cl.OpenSession(tenant, fmt.Sprintf("e13-%d", i))
					return err
				}); err != nil {
					return err
				}
				inputs := map[string]string{}
				for _, n := range []string{"A", "B", "C", "D"} {
					name := ns + "/" + strings.ToLower(n)
					if err := timed("e13.import.us", func() error {
						_, err := cl.Import(info.ID, server.ImportRequest{Name: name, Kind: "shifter", Width: 4})
						return err
					}); err != nil {
						return err
					}
					inputs[n] = name
				}
				var steps int
				if err := timed("e13.task.us", func() error {
					rec, err := cl.SubmitTask(info.ID, server.TaskRequest{
						Task:   "Fanout4",
						Inputs: inputs,
						Outputs: map[string]string{
							"O1": ns + "/o1", "O2": ns + "/o2", "O3": ns + "/o3", "O4": ns + "/o4",
						},
					})
					if err != nil {
						return err
					}
					steps = len(rec.Steps)
					return nil
				}); err != nil {
					return err
				}
				if steps != 4 {
					return fmt.Errorf("session %d: %d steps recorded, want 4", i, steps)
				}
				if err := timed("e13.history.us", func() error {
					recs, err := cl.History(info.ID)
					if err != nil {
						return err
					}
					if len(recs) != 1 {
						return fmt.Errorf("session %d: %d history records, want 1", i, len(recs))
					}
					return nil
				}); err != nil {
					return err
				}
				return timed("e13.close.us", func() error { return cl.CloseSession(info.ID) })
			}
			errs[i] = run()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			log.Fatalf("serve: session %d failed: %v", i, err)
		}
	}

	// Fingerprint the per-shard version maps, shard order.
	var fp strings.Builder
	for i := 0; i < serveShards; i++ {
		fmt.Fprintf(&fp, "shard %d\n%s", i, srv.ShardSystem(i).Store.VersionMapText())
	}
	must(httpSrv.Close())
	must(srv.Close())

	snap := lat.Snapshot()
	q := func(h string, quantile float64) float64 {
		return float64(snap.Histograms[h].Quantile(quantile)) / 1000
	}
	steps := reg.Counter("task.step.complete")
	row := serveRow{
		Sessions:    serveSessions,
		Shards:      serveShards,
		Workers:     serveWorkers,
		Tenants:     serveTenants,
		Steps:       steps,
		WallMS:      float64(wall.Microseconds()) / 1000,
		StepsPerSec: float64(steps) / wall.Seconds(),
		TaskP50MS:   q("e13.task.us", 0.50),
		TaskP99MS:   q("e13.task.us", 0.99),
		AllP50MS:    q("e13.all.us", 0.50),
		AllP99MS:    q("e13.all.us", 0.99),
		Throttled:   reg.Counter("server.admit.throttle"),
		Shed:        reg.Counter("server.admit.shed"),
		Retries:     retries,
		VersionSHA:  fmt.Sprintf("%x", sha256.Sum256([]byte(fp.String()))),
	}

	fmt.Println("sessions | steps | wall ms | steps/sec | task p50 ms | task p99 ms | all p99 ms | throttled | shed | retries | versions")
	fmt.Printf("%8d | %5d | %7.1f | %9.1f | %11.2f | %11.2f | %10.2f | %9d | %4d | %7d | %s\n",
		row.Sessions, row.Steps, row.WallMS, row.StepsPerSec,
		row.TaskP50MS, row.TaskP99MS, row.AllP99MS,
		row.Throttled, row.Shed, row.Retries, row.VersionSHA[:12])
	fmt.Println("request class | p50 ms | p99 ms | count")
	for _, h := range []string{"e13.open.us", "e13.import.us", "e13.task.us", "e13.history.us", "e13.close.us"} {
		hs := snap.Histograms[h]
		fmt.Printf("%13s | %6.2f | %6.2f | %5d\n",
			strings.TrimSuffix(strings.TrimPrefix(h, "e13."), ".us"), q(h, 0.50), q(h, 0.99), hs.Count)
	}

	f, err := os.Create(serveOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode([]serveRow{row}))
	must(f.Close())
	fmt.Printf("wrote %s\n", serveOut)

	wantSteps := int64(serveSessions) * 4
	if steps != wantSteps {
		log.Fatalf("serve gate: %d steps completed, want %d (every session must run its 4-step task)", steps, wantSteps)
	}
	if serveMin > 0 && row.StepsPerSec < serveMin {
		gateFail("serve gate: %.1f steps/sec < required %.1f", row.StepsPerSec, serveMin)
	}
	if serveP99 > 0 && row.TaskP99MS > serveP99 {
		gateFail("serve gate: task p99 %.1f ms > ceiling %.1f ms", row.TaskP99MS, serveP99)
	}

	var md strings.Builder
	md.WriteString("### E13 serve: wire-path load\n\n")
	md.WriteString("| sessions | steps | steps/sec | task p50 ms | task p99 ms | all p99 ms | throttled | shed | retries |\n")
	md.WriteString("|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(&md, "| %d | %d | %.1f | %.2f | %.2f | %.2f | %d | %d | %d |\n\n",
		row.Sessions, row.Steps, row.StepsPerSec, row.TaskP50MS, row.TaskP99MS,
		row.AllP99MS, row.Throttled, row.Shed, row.Retries)
	md.WriteString("| request class | p50 ms | p99 ms | count |\n|:---|---:|---:|---:|\n")
	for _, h := range []string{"e13.open.us", "e13.import.us", "e13.task.us", "e13.history.us", "e13.close.us"} {
		fmt.Fprintf(&md, "| %s | %.2f | %.2f | %d |\n",
			strings.TrimSuffix(strings.TrimPrefix(h, "e13."), ".us"), q(h, 0.50), q(h, 0.99), snap.Histograms[h].Count)
	}
	md.WriteString("\n")
	appendSummary(md.String())
}
