package main

// index.go is E16: the pluggable version-index backends head-to-head.
// Each selected workload profile is driven once per backend (map, btree,
// lsm) over a WAL-armed engine, then a read-heavy lineage phase scans
// every object's full version chain -ixscans times — the access pattern
// rework and history queries lean on and the reason the indexed backends
// exist (docs/STORAGE.md). Correctness gates are hard failures: the
// first backend runs twice (repeat gate), every backend's version-map
// and stats fingerprints must match the reference byte for byte, the
// scan phase must visit the identical version set, and recovering each
// cell from its write-ahead log must reproduce the same version map
// (recovery-parity gate). Wall-clock throughput is the one
// host-dependent column (EXPERIMENTS.md E16).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"papyrus/internal/core"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/workload"
)

var (
	ixBackends string
	ixProfiles string
	ixSeed     int64
	ixSessions int
	ixDepth    int
	ixFanout   int
	ixWorkers  int
	ixScans    int
	ixMin      float64
	ixOut      string
)

// indexRow is one (profile, backend) cell of BENCH_index.json.
type indexRow struct {
	Profile  string `json:"profile"`
	Backend  string `json:"backend"`
	Seed     int64  `json:"seed"`
	Sessions int    `json:"sessions"`
	Rounds   int    `json:"rounds"`
	// Steps/WallMS/StepsPerSec measure the write-heavy drive: the
	// generated workload executed against the backend under WAL.
	Steps       int64   `json:"steps"`
	WallMS      float64 `json:"wall_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// Scans/ScanMS/ScansPerSec measure the read-heavy phase: full
	// version-chain scans over every live name. ScanVisited is the
	// deterministic sum of version numbers seen — identical across
	// backends or the cell is lying about its contents.
	Scans       int64   `json:"chain_scans"`
	ScanMS      float64 `json:"scan_ms"`
	ScansPerSec float64 `json:"scans_per_sec"`
	ScanVisited int64   `json:"scan_visited"`
	// StatsSHA is the memo-filtered metrics fingerprint and VersionSHA
	// the final OCT version map; both must be backend-invariant.
	// RecoverSHA is the version map after rebuilding the cell from its
	// write-ahead log alone and must equal VersionSHA.
	StatsSHA   string `json:"stats_sha256"`
	VersionSHA string `json:"version_sha256"`
	RecoverSHA string `json:"recover_sha256"`
}

// runIndexCell drives one profile against one backend with the WAL
// armed, times the lineage-scan phase, and proves the cell recoverable
// from its log.
func runIndexCell(w *workload.Workload, backend string) indexRow {
	reg := obs.NewRegistry()
	walDir, err := os.MkdirTemp("", "papyrus-index-wal-")
	must(err)
	defer os.RemoveAll(walDir)
	mkCfg := func(metrics *obs.Registry) core.Config {
		return w.CoreConfig(core.Config{
			Nodes:            4,
			Workers:          ixWorkers,
			DisableInference: true,
			Metrics:          metrics,
			StoreBackend:     backend,
			Durability:       &core.DurabilityConfig{Dir: walDir, FsyncEvery: 8},
		})
	}
	sys, err := core.New(mkCfg(reg))
	must(err)
	start := time.Now()
	must(workload.RunInProcess(sys, w, workload.Options{}))
	wall := time.Since(start)
	steps := reg.Counter("task.step.complete")

	// Read-heavy phase: the history/lineage access pattern — walk every
	// object's full version chain, holes skipped, repeatedly.
	names := sys.Store.Names()
	var visited int64
	scanStart := time.Now()
	for rep := 0; rep < ixScans; rep++ {
		for _, name := range names {
			for _, obj := range sys.Store.Chain(name, 1, 0) {
				visited += int64(obj.Version)
			}
		}
	}
	scanWall := time.Since(scanStart)
	scans := int64(ixScans) * int64(len(names))

	row := indexRow{
		Profile:     w.Spec.Profile,
		Backend:     backend,
		Seed:        w.Spec.Seed,
		Sessions:    w.Spec.Sessions,
		Rounds:      w.Rounds,
		Steps:       steps,
		WallMS:      float64(wall.Microseconds()) / 1000,
		StepsPerSec: float64(steps) / wall.Seconds(),
		Scans:       scans,
		ScanMS:      float64(scanWall.Microseconds()) / 1000,
		ScansPerSec: float64(scans) / scanWall.Seconds(),
		ScanVisited: visited,
		StatsSHA:    statsSHA(reg),
		VersionSHA:  fmt.Sprintf("%x", sha256.Sum256([]byte(sys.Store.VersionMapText()))),
	}
	must(sys.Close())

	// Recovery parity: rebuild the whole cell from the log alone (no
	// snapshot was ever taken) and refingerprint the store.
	rsys, _, err := core.Recover(mkCfg(obs.NewRegistry()), "")
	must(err)
	row.RecoverSHA = fmt.Sprintf("%x", sha256.Sum256([]byte(rsys.Store.VersionMapText())))
	must(rsys.Close())
	return row
}

// expIndex is E16. Every gate except the -ixmin throughput floor is a
// hard failure.
func expIndex() {
	fmt.Println("## E16: version-index backends — map vs btree vs lsm, write drive + lineage scans")
	fmt.Printf("(seed %d, %d sessions, depth %d, fanout %d, %d scan rounds; fingerprints must be backend-invariant)\n",
		ixSeed, ixSessions, ixDepth, ixFanout, ixScans)
	var backends []string
	for _, b := range strings.Split(ixBackends, ",") {
		if b = strings.TrimSpace(b); b == "" {
			continue
		}
		parsed, err := oct.ParseBackend(b)
		must(err)
		backends = append(backends, string(parsed))
	}
	if len(backends) == 0 {
		log.Fatal("index: empty -ixbackends list")
	}
	var profiles []string
	for _, p := range strings.Split(ixProfiles, ",") {
		if p = strings.TrimSpace(p); p != "" {
			profiles = append(profiles, p)
		}
	}

	fmt.Println("profile | backend | steps | wall ms | steps/sec | scans | scan ms | scans/sec | recovery | fingerprints")
	var rows []indexRow
	for _, profile := range profiles {
		w, err := workload.Generate(workload.Spec{
			Profile:  profile,
			Seed:     ixSeed,
			Sessions: ixSessions,
			Depth:    ixDepth,
			Fanout:   ixFanout,
		})
		must(err)

		// Repeat gate: the first backend runs twice; both fingerprints
		// must agree before any cross-backend comparison is trusted.
		ref := runIndexCell(w, backends[0])
		again := runIndexCell(w, backends[0])
		if again.VersionSHA != ref.VersionSHA || again.StatsSHA != ref.StatsSHA {
			log.Fatalf("index %s/%s: repeat run diverged (versions %s vs %s, stats %s vs %s)",
				profile, backends[0], again.VersionSHA[:12], ref.VersionSHA[:12],
				again.StatsSHA[:12], ref.StatsSHA[:12])
		}
		cells := []indexRow{ref}
		for _, backend := range backends[1:] {
			cells = append(cells, runIndexCell(w, backend))
		}
		for _, row := range cells {
			if row.VersionSHA != ref.VersionSHA {
				log.Fatalf("index %s: backend %s version map diverged from %s (%s vs %s)",
					profile, row.Backend, ref.Backend, row.VersionSHA[:12], ref.VersionSHA[:12])
			}
			if row.StatsSHA != ref.StatsSHA {
				log.Fatalf("index %s: backend %s stats fingerprint diverged from %s (%s vs %s)",
					profile, row.Backend, ref.Backend, row.StatsSHA[:12], ref.StatsSHA[:12])
			}
			if row.ScanVisited != ref.ScanVisited {
				log.Fatalf("index %s: backend %s chain scans visited %d versions, %s visited %d",
					profile, row.Backend, row.ScanVisited, ref.Backend, ref.ScanVisited)
			}
			if row.RecoverSHA != row.VersionSHA {
				log.Fatalf("index %s: backend %s WAL recovery diverged from the live store (%s vs %s)",
					profile, row.Backend, row.RecoverSHA[:12], row.VersionSHA[:12])
			}
			fmt.Printf("%-11s | %-7s | %5d | %7.1f | %9.1f | %5d | %7.1f | %9.1f | ok | ok (%s/%s)\n",
				row.Profile, row.Backend, row.Steps, row.WallMS, row.StepsPerSec,
				row.Scans, row.ScanMS, row.ScansPerSec, row.StatsSHA[:12], row.VersionSHA[:12])
			if ixMin > 0 && row.StepsPerSec < ixMin {
				gateFail("index gate: profile %s backend %s ran %.1f steps/sec < required %.1f",
					profile, row.Backend, row.StepsPerSec, ixMin)
			}
		}
		rows = append(rows, cells...)
	}

	f, err := os.Create(ixOut)
	must(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	must(enc.Encode(rows))
	must(f.Close())
	fmt.Printf("wrote %d rows to %s\n", len(rows), ixOut)

	var md strings.Builder
	md.WriteString("### E16 index: version-store backends head-to-head\n\n")
	md.WriteString("| profile | backend | steps | steps/sec | chain scans/sec | recovery |\n")
	md.WriteString("|:---|:---|---:|---:|---:|:---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&md, "| %s | %s | %d | %.1f | %.1f | ok |\n",
			r.Profile, r.Backend, r.Steps, r.StepsPerSec, r.ScansPerSec)
	}
	md.WriteString("\n")
	appendSummary(md.String())
}
