package main

import "papyrus/internal/tdl"

// tdlParse adapts the TDL parser to the shell's header type.
func tdlParse(text string) (*tplHeader, error) {
	tpl, err := tdl.Parse(text)
	if err != nil {
		return nil, err
	}
	return &tplHeader{ins: tpl.Inputs, outs: tpl.Outputs}, nil
}
