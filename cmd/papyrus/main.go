// papyrus is an interactive shell over the design environment: the
// command-line analogue of the prototype's Tk interface. Create threads,
// invoke TDL tasks, browse and rework the design history, inspect data
// scopes and inferred metadata, and share objects through SDS spaces.
//
// Run it and type `help`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"papyrus/internal/activity"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/reclaim"
	"papyrus/internal/render"
	"papyrus/internal/templates"
)

const helpText = `commands:
  help                                this text
  tasks                               list task templates
  man <tool>                          show a CAD tool's manual page
  import <name> shifter <width>       import a shifter spec
  import <name> adder <width>         import an adder spec
  import <name> random <seed>         import a random behavioral spec
  thread <name>                       create a design thread and select it
  threads                             list threads
  use <id>                            select a thread
  invoke <task> <formal>=<obj> ...    instantiate a task in the thread
  show                                render the control stream
  scope                               render the current data scope
  workspace                           render the thread workspace (frontier union)
  move <record-id|initial>            rework: move the current cursor
  replay <record-id>                  re-run a record's task with the same bindings (memo turns it into hits)
  annotate <record-id> <text...>      annotate a history record
  objects                             list store objects
  meta <name[@v]>                     inferred metadata of an object
  outofdate <name[@v]>                is a derived object stale?
  rebuild <name[@v]>                  replay its derivation from latest sources
  gc                                  detect iterations, collect, sweep store
  attime <stamp>                      random access by time (hour buckets)
  stats                               session counters and histograms (obs registry)
  memo                                step-result cache statistics (docs/CACHING.md)
  trace <file>                        dump the session trace as Chrome trace_event JSON
  save <dir> | load <dir>             persist / restore the whole session
  recover [dir]                       rebuild from the write-ahead log (+ optional snapshot dir)
  quit`

type shell struct {
	sys     *core.System
	current *activity.Thread
	out     *bufio.Writer
}

// Durability flags: a non-empty -wal-dir makes every shell session
// write-ahead logged, so `recover` (or a restart with the same flags)
// survives a crash (docs/DURABILITY.md).
var (
	walDir     = flag.String("wal-dir", "", "write-ahead log directory; enables durability (docs/DURABILITY.md)")
	fsyncEvery = flag.Int64("fsync-every", 1, "group-commit flush interval in virtual ticks (<=1 fsyncs every append)")
	useMemo    = flag.Bool("memo", false, "enable the history-based step-result cache (docs/CACHING.md)")
	backend    = flag.String("backend", "", "object-store version-index backend: map, btree, or lsm (docs/STORAGE.md)")
)

// flagOrder is the order -h prints flags in. The stock alphabetical
// listing put -fsync-every ahead of the -wal-dir it modifies.
var flagOrder = []string{"wal-dir", "fsync-every", "memo", "backend"}

// usage replaces the default flag.Usage: same per-flag format, but in
// flagOrder instead of alphabetically. Flags missing from flagOrder are
// appended at the end so nothing ever drops out of -h.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "usage: papyrus [-wal-dir dir [-fsync-every n]] [-memo] [-backend map|btree|lsm]")
	fmt.Fprintln(w, "\ninteractive design-process shell; type `help` at the prompt for commands.")
	fmt.Fprintln(w, "\nflags:")
	seen := make(map[string]bool, len(flagOrder))
	order := flagOrder
	for _, n := range order {
		seen[n] = true
	}
	flag.VisitAll(func(f *flag.Flag) {
		if !seen[f.Name] {
			order = append(order, f.Name)
		}
	})
	for _, name := range order {
		f := flag.Lookup(name)
		if f == nil {
			continue
		}
		u := f.Usage
		if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
			u += " (default " + f.DefValue + ")"
		}
		fmt.Fprintf(w, "  -%s\n    \t%s\n", f.Name, u)
	}
}

// shellConfig is the System configuration the shell runs with: every
// session carries a live metrics registry and tracer so `stats` and
// `trace` work without flags.
func shellConfig() core.Config {
	cfg := core.Config{Nodes: 4, ReMigrateEvery: 25,
		Metrics: obs.NewRegistry(), Trace: obs.NewTracer(),
		StoreBackend: *backend}
	if *walDir != "" {
		cfg.Durability = &core.DurabilityConfig{Dir: *walDir, FsyncEvery: *fsyncEvery}
	}
	// A fresh cache per config keeps `recover` honest: the recovered
	// session's cache is rebuilt from history by WarmMemo, never inherited.
	if *useMemo {
		cfg.Memo = memo.NewCache()
	}
	return cfg
}

func main() {
	flag.Usage = usage
	flag.Parse()
	sys, err := core.New(shellConfig())
	if err != nil {
		log.Fatal(err)
	}
	sh := &shell{sys: sys, out: bufio.NewWriter(os.Stdout)}
	fmt.Fprintln(sh.out, "Papyrus design process manager — type `help`")
	sh.out.Flush()
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(sh.out, "papyrus> ")
		sh.out.Flush()
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.dispatch(strings.Fields(line)); err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
		}
		sh.out.Flush()
	}
	if err := sh.sys.Close(); err != nil {
		log.Fatal(err)
	}
}

func (sh *shell) dispatch(args []string) error {
	switch args[0] {
	case "help":
		fmt.Fprintln(sh.out, helpText)
	case "tasks":
		fmt.Fprint(sh.out, render.TaskList(templates.Names()))
	case "man":
		if len(args) != 2 {
			return fmt.Errorf("usage: man <tool>")
		}
		page, err := sh.sys.Suite.ManPage(args[1])
		if err != nil {
			return err
		}
		fmt.Fprint(sh.out, page)
	case "import":
		return sh.cmdImport(args[1:])
	case "thread":
		if len(args) != 2 {
			return fmt.Errorf("usage: thread <name>")
		}
		sh.current = sh.sys.NewThread(args[1], os.Getenv("USER"))
		fmt.Fprintf(sh.out, "thread %d (%s) selected\n", sh.current.ID(), sh.current.Name())
	case "threads":
		for _, t := range sh.sys.Activity.Threads() {
			marker := " "
			if t == sh.current {
				marker = "*"
			}
			fmt.Fprintf(sh.out, "%s %d %s (%s), %d records\n", marker, t.ID(), t.Name(), t.Owner(), t.Stream().Len())
		}
	case "use":
		if len(args) != 2 {
			return fmt.Errorf("usage: use <id>")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		for _, t := range sh.sys.Activity.Threads() {
			if t.ID() == id {
				sh.current = t
				fmt.Fprintf(sh.out, "thread %d selected\n", id)
				return nil
			}
		}
		return fmt.Errorf("no thread %d", id)
	case "invoke":
		return sh.cmdInvoke(args[1:])
	case "show":
		if err := sh.needThread(); err != nil {
			return err
		}
		fmt.Fprint(sh.out, sh.sys.RenderThread(sh.current))
	case "scope":
		if err := sh.needThread(); err != nil {
			return err
		}
		fmt.Fprint(sh.out, sh.sys.RenderScope(sh.current))
	case "workspace":
		// The Show Thread Workspace view (Fig 5.4): the union of the
		// frontier cursors' thread states.
		if err := sh.needThread(); err != nil {
			return err
		}
		fmt.Fprint(sh.out, render.DataScope("thread workspace "+sh.current.Name(), sh.current.Workspace()))
	case "move":
		return sh.cmdMove(args[1:])
	case "annotate":
		return sh.cmdAnnotate(args[1:])
	case "objects":
		names := sh.sys.Store.Names()
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(sh.out, "  %s (%d versions)\n", n, sh.sys.Store.LatestVersion(n))
		}
	case "meta":
		return sh.cmdMeta(args[1:])
	case "outofdate":
		if len(args) != 2 {
			return fmt.Errorf("usage: outofdate <name[@v]>")
		}
		ref, err := sh.resolveFull(args[1])
		if err != nil {
			return err
		}
		stale, err := sh.sys.OutOfDate(ref)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%s out of date: %v\n", ref, stale)
	case "rebuild":
		if len(args) != 2 {
			return fmt.Errorf("usage: rebuild <name[@v]>")
		}
		ref, err := sh.resolveFull(args[1])
		if err != nil {
			return err
		}
		fresh, err := sh.sys.Rebuild(ref)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "rebuilt %s -> %s\n", ref, fresh)
	case "gc":
		return sh.cmdGC()
	case "attime":
		if err := sh.needThread(); err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("usage: attime <stamp>")
		}
		stamp, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		rec, ok := sh.current.AtTime(stamp)
		if !ok {
			fmt.Fprintln(sh.out, "no record at or after that time")
			return nil
		}
		fmt.Fprintf(sh.out, "record %d: %s @ %d\n", rec.ID, rec.TaskName, rec.Time)
	case "stats":
		// Per-node utilization is sampled on demand so the histogram
		// reflects the cluster state at the moment of the query.
		sh.sys.Cluster.ObserveUtilization()
		return sh.sys.Metrics.WriteText(sh.out)
	case "memo":
		if sh.sys.Memo == nil {
			fmt.Fprintln(sh.out, "memo cache disabled (run with -memo)")
			return nil
		}
		st := sh.sys.Memo.Snapshot()
		fmt.Fprintf(sh.out, "memo: %d entries, %d hits, %d misses, %d bytes stored, %d bytes served\n",
			st.Entries, st.Hits, st.Misses, st.BytesStored, st.BytesServed)
	case "replay":
		return sh.cmdReplay(args[1:])
	case "trace":
		if len(args) != 2 {
			return fmt.Errorf("usage: trace <file>")
		}
		f, err := os.Create(args[1])
		if err != nil {
			return err
		}
		if err := sh.sys.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%d events written to %s (open in chrome://tracing)\n", sh.sys.Trace.Len(), args[1])
	case "save":
		if len(args) != 2 {
			return fmt.Errorf("usage: save <dir>")
		}
		if err := sh.sys.SaveSession(args[1]); err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "session saved to %s\n", args[1])
	case "load":
		if len(args) != 2 {
			return fmt.Errorf("usage: load <dir>")
		}
		// Release the current session's log before the loaded session
		// reopens the same directory.
		if err := sh.sys.Close(); err != nil {
			return err
		}
		sys, err := core.LoadSession(shellConfig(), args[1])
		if err != nil {
			return err
		}
		sh.adopt(sys)
		fmt.Fprintf(sh.out, "session loaded (%d threads)\n", len(sys.Activity.Threads()))
	case "recover":
		if len(args) > 2 {
			return fmt.Errorf("usage: recover [snapshot-dir]")
		}
		snapDir := ""
		if len(args) == 2 {
			snapDir = args[1]
		}
		if err := sh.sys.Close(); err != nil {
			return err
		}
		sys, stats, err := core.Recover(shellConfig(), snapDir)
		if err != nil {
			return err
		}
		sh.adopt(sys)
		fmt.Fprintf(sh.out, "recovered %d records from %d segments (%d torn bytes discarded), %d threads\n",
			stats.Records, stats.Segments, stats.Truncated, len(sys.Activity.Threads()))
	default:
		return fmt.Errorf("unknown command %q (try help)", args[0])
	}
	return nil
}

// adopt replaces the shell's session with a loaded or recovered one.
func (sh *shell) adopt(sys *core.System) {
	sh.sys = sys
	sh.current = nil
	if ts := sys.Activity.Threads(); len(ts) > 0 {
		sh.current = ts[0]
	}
}

func (sh *shell) needThread() error {
	if sh.current == nil {
		return fmt.Errorf("no thread selected (use `thread <name>`)")
	}
	return nil
}

func (sh *shell) cmdImport(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: import <name> shifter|adder|random <arg>")
	}
	n, err := strconv.Atoi(args[2])
	if err != nil {
		return fmt.Errorf("bad numeric argument %q", args[2])
	}
	var text string
	switch args[1] {
	case "shifter":
		text = logic.ShifterBehavior(n)
	case "adder":
		text = logic.AdderBehavior(n)
	case "random":
		text = logic.GenBehavior(logic.GenConfig{Seed: int64(n), Inputs: 5, Outputs: 3, Depth: 4})
	default:
		return fmt.Errorf("unknown generator %q", args[1])
	}
	ref, err := sh.sys.ImportObject(args[0], oct.TypeBehavioral, oct.Text(text))
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "imported %s\n", ref)
	return nil
}

func (sh *shell) cmdInvoke(args []string) error {
	if err := sh.needThread(); err != nil {
		return err
	}
	if len(args) < 1 {
		return fmt.Errorf("usage: invoke <task> formal=object ...")
	}
	taskName := args[0]
	text, err := templates.Lookup(taskName)
	if err != nil {
		return err
	}
	tpl, err := parseTemplate(text)
	if err != nil {
		return err
	}
	bindings := map[string]string{}
	for _, kv := range args[1:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("binding %q is not formal=object", kv)
		}
		bindings[parts[0]] = parts[1]
	}
	inputs := map[string]string{}
	outputs := map[string]string{}
	for _, formal := range tpl.ins {
		v, ok := bindings[formal]
		if !ok {
			return fmt.Errorf("missing binding for input %q", formal)
		}
		inputs[formal] = v
	}
	for _, formal := range tpl.outs {
		v, ok := bindings[formal]
		if !ok {
			return fmt.Errorf("missing binding for output %q", formal)
		}
		outputs[formal] = v
	}
	rec, err := sh.sys.Invoke(sh.current, taskName, inputs, outputs)
	if err != nil {
		return err
	}
	if rec == nil {
		fmt.Fprintln(sh.out, "task completed (record filtered)")
		return nil
	}
	fmt.Fprint(sh.out, render.ProgressFromRecord(rec))
	return nil
}

func (sh *shell) cmdMove(args []string) error {
	if err := sh.needThread(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: move <record-id|initial>")
	}
	if args[0] == "initial" {
		return sh.current.MoveCursor(nil)
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	rec, ok := sh.current.Stream().ByID(id)
	if !ok {
		return fmt.Errorf("no record %d", id)
	}
	return sh.current.MoveCursor(rec)
}

// cmdReplay re-invokes a recorded task with the record's actual
// input/output bindings — the cursor-move rework flow (§3.3.3) as one
// command. With -memo the re-run resolves entirely from the cache.
func (sh *shell) cmdReplay(args []string) error {
	if err := sh.needThread(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: replay <record-id>")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	rec, ok := sh.current.Stream().ByID(id)
	if !ok {
		return fmt.Errorf("no record %d", id)
	}
	fresh, err := sh.sys.Activity.ReplayRecord(sh.current, rec)
	if err != nil {
		return err
	}
	if fresh == nil {
		fmt.Fprintln(sh.out, "task completed (record filtered)")
		return nil
	}
	fmt.Fprint(sh.out, render.ProgressFromRecord(fresh))
	return nil
}

func (sh *shell) cmdAnnotate(args []string) error {
	if err := sh.needThread(); err != nil {
		return err
	}
	if len(args) < 2 {
		return fmt.Errorf("usage: annotate <record-id> <text>")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	rec, ok := sh.current.Stream().ByID(id)
	if !ok {
		return fmt.Errorf("no record %d", id)
	}
	return sh.current.Annotate(rec, strings.Join(args[1:], " "))
}

func (sh *shell) cmdMeta(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: meta <name[@version]>")
	}
	ref, err := oct.ParseRef(args[0])
	if err != nil {
		return err
	}
	obj, err := sh.sys.Store.Peek(ref)
	if err != nil {
		return err
	}
	full := oct.Ref{Name: obj.Name, Version: obj.Version}
	fmt.Fprintf(sh.out, "%s: stored type %s, %d bytes, created by %s\n",
		full, obj.Type, obj.Data.Size(), obj.Creator)
	if typ, ok := sh.sys.Inference.TypeOf(full); ok {
		fmt.Fprintf(sh.out, "  inferred type: %s\n", typ)
	}
	for _, a := range sh.sys.Attrs.Attrs(full) {
		if e, ok := sh.sys.Attrs.Peek(full, a); ok {
			fmt.Fprintf(sh.out, "  %s = %s [%s]\n", a, e.Value, e.Source)
		}
	}
	for _, r := range sh.sys.Inference.Relationships(full) {
		fmt.Fprintf(sh.out, "  %s: %s -> %s (via %s)\n", r.Kind, r.From, r.To, r.Via)
	}
	if class := sh.sys.Inference.EquivalenceClass(full); len(class) > 1 {
		fmt.Fprintf(sh.out, "  equivalent representations: %v\n", class)
	}
	if lineage := sh.sys.Inference.Lineage(full); len(lineage) > 1 {
		fmt.Fprintf(sh.out, "  version lineage: %v\n", lineage)
	}
	ops, err := sh.sys.Inference.Graph().Derivation(full)
	if err == nil && len(ops) > 0 {
		rows := make([]render.DerivationOp, len(ops))
		for i, op := range ops {
			rows[i] = render.DerivationOp{Tool: op.Tool, Options: op.Options,
				Inputs: refStrings(op.Inputs), Outputs: refStrings(op.Outputs)}
		}
		fmt.Fprint(sh.out, render.Derivation(full.String(), rows))
	}
	return nil
}

func refStrings(refs []oct.Ref) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.String()
	}
	return out
}

// resolveFull resolves a user-typed object name to a concrete versioned
// ref, preferring the current thread's scope rules when a thread is
// selected.
func (sh *shell) resolveFull(name string) (oct.Ref, error) {
	if sh.current != nil {
		if ref, err := sh.current.ResolveInput(name); err == nil {
			return ref, nil
		}
	}
	ref, err := oct.ParseRef(name)
	if err != nil {
		return oct.Ref{}, err
	}
	obj, err := sh.sys.Store.Peek(ref)
	if err != nil {
		return oct.Ref{}, err
	}
	return oct.Ref{Name: obj.Name, Version: obj.Version}, nil
}

// cmdGC runs the future-work iteration detection plus collection and a
// full object sweep through the system's reclaimer — so the sweep is
// WAL-logged, memo-coherent, and honors the configured grace period
// (docs/RECLAIM.md).
func (sh *shell) cmdGC() error {
	if err := sh.needThread(); err != nil {
		return err
	}
	hints := reclaim.DetectIterations(sh.current)
	rc := sh.sys.Reclaimer
	removed := 0
	for _, h := range hints {
		n, err := rc.CollectIterations(sh.current, h)
		if err != nil {
			return err
		}
		removed += n
	}
	stats, err := rc.Sweep(0)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "detected %d iterative processes, removed %d records, reclaimed %d versions (%d bytes)\n",
		len(hints), removed, stats.Versions, stats.Bytes)
	if stats.MemoInvalidated > 0 {
		fmt.Fprintf(sh.out, "invalidated %d memo entries\n", stats.MemoInvalidated)
	}
	return nil
}

// parseTemplate extracts a template's formal argument lists.
type tplHeader struct{ ins, outs []string }

func parseTemplate(text string) (*tplHeader, error) {
	tpl, err := tdlParse(text)
	if err != nil {
		return nil, err
	}
	return tpl, nil
}
