package main

import (
	"bufio"
	"bytes"
	"flag"
	"strings"
	"testing"

	"papyrus/internal/core"
	"papyrus/internal/oct"
)

// newTestShell builds a shell writing into a buffer.
func newTestShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	sys, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	return &shell{sys: sys, out: bufio.NewWriter(&buf)}, &buf
}

// run dispatches one command line and returns the accumulated output.
func run(t *testing.T, sh *shell, buf *bytes.Buffer, line string) string {
	t.Helper()
	if err := sh.dispatch(strings.Fields(line)); err != nil {
		t.Fatalf("dispatch(%q): %v", line, err)
	}
	sh.out.Flush()
	out := buf.String()
	buf.Reset()
	return out
}

// runErr dispatches expecting an error.
func runErr(t *testing.T, sh *shell, line string) error {
	t.Helper()
	err := sh.dispatch(strings.Fields(line))
	if err == nil {
		t.Fatalf("dispatch(%q): expected error", line)
	}
	sh.out.Flush()
	return err
}

func TestShellSessionFlow(t *testing.T) {
	sh, buf := newTestShell(t)

	out := run(t, sh, buf, "help")
	if !strings.Contains(out, "commands:") {
		t.Errorf("help output: %q", out)
	}
	out = run(t, sh, buf, "tasks")
	if !strings.Contains(out, "Mosaico") {
		t.Errorf("tasks output: %q", out)
	}
	out = run(t, sh, buf, "man espresso")
	if !strings.Contains(out, "two-level logic minimizer") {
		t.Errorf("man output: %q", out)
	}
	run(t, sh, buf, "import /s shifter 3")
	run(t, sh, buf, "thread demo")
	out = run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=sh.logic")
	if !strings.Contains(out, "Format_Transformation") {
		t.Errorf("invoke output: %q", out)
	}
	out = run(t, sh, buf, "show")
	if !strings.Contains(out, "create-logic-description") {
		t.Errorf("show output: %q", out)
	}
	out = run(t, sh, buf, "scope")
	if !strings.Contains(out, "sh.logic") {
		t.Errorf("scope output: %q", out)
	}
	out = run(t, sh, buf, "meta sh.logic")
	if !strings.Contains(out, "inferred type: logic") {
		t.Errorf("meta output: %q", out)
	}
	out = run(t, sh, buf, "objects")
	if !strings.Contains(out, "/s") {
		t.Errorf("objects output: %q", out)
	}
	run(t, sh, buf, "annotate 1 first milestone")
	out = run(t, sh, buf, "show")
	if !strings.Contains(out, "first milestone") {
		t.Errorf("annotation not rendered: %q", out)
	}
	run(t, sh, buf, "move initial")
	out = run(t, sh, buf, "show")
	if !strings.Contains(out, "cursor at initial design point") {
		t.Errorf("cursor move: %q", out)
	}
	run(t, sh, buf, "move 1")
	out = run(t, sh, buf, "threads")
	if !strings.Contains(out, "* 1 demo") {
		t.Errorf("threads output: %q", out)
	}
}

func TestShellRebuildFlow(t *testing.T) {
	sh, buf := newTestShell(t)
	run(t, sh, buf, "import /s shifter 3")
	run(t, sh, buf, "thread demo")
	run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=sh.logic")
	out := run(t, sh, buf, "outofdate sh.logic")
	if !strings.Contains(out, "out of date: false") {
		t.Errorf("outofdate: %q", out)
	}
	// A new spec version makes it stale; rebuild regenerates.
	run(t, sh, buf, "import /s shifter 4")
	out = run(t, sh, buf, "outofdate sh.logic")
	if !strings.Contains(out, "out of date: true") {
		t.Errorf("outofdate after modify: %q", out)
	}
	out = run(t, sh, buf, "rebuild sh.logic")
	if !strings.Contains(out, "rebuilt sh.logic@1 ->") {
		t.Errorf("rebuild: %q", out)
	}
}

func TestShellGCAndTime(t *testing.T) {
	sh, buf := newTestShell(t)
	run(t, sh, buf, "import /s shifter 3")
	if _, err := sh.sys.ImportObject("/c", oct.TypeText, oct.Text("set d0 1\nsim\n")); err != nil {
		t.Fatal(err)
	}
	run(t, sh, buf, "thread demo")
	run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=l")
	for i := 0; i < 4; i++ {
		run(t, sh, buf, "invoke logic-simulator Inlogic=l Commands=/c Report=r")
	}
	out := run(t, sh, buf, "gc")
	if !strings.Contains(out, "detected 1 iterative processes") {
		t.Errorf("gc output: %q", out)
	}
	out = run(t, sh, buf, "attime 0")
	if !strings.Contains(out, "record 1") {
		t.Errorf("attime output: %q", out)
	}
}

func TestShellSaveLoad(t *testing.T) {
	sh, buf := newTestShell(t)
	dir := t.TempDir()
	run(t, sh, buf, "import /s shifter 3")
	run(t, sh, buf, "thread demo")
	run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=l")
	out := run(t, sh, buf, "save "+dir)
	if !strings.Contains(out, "session saved") {
		t.Errorf("save: %q", out)
	}
	out = run(t, sh, buf, "load "+dir)
	if !strings.Contains(out, "session loaded (1 threads)") {
		t.Errorf("load: %q", out)
	}
	out = run(t, sh, buf, "scope")
	if !strings.Contains(out, "l : version 1") {
		t.Errorf("restored scope: %q", out)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newTestShell(t)
	for _, line := range []string{
		"bogus",
		"man",
		"man ghosttool",
		"import x unknown 3",
		"import x shifter abc",
		"use 99",
		"show",   // no thread
		"move 1", // no thread
		"invoke", // no thread
		"gc",
		"attime 5",
		"load /nonexistent-dir-xyz",
	} {
		runErr(t, sh, line)
	}
	// With a thread but bad arguments.
	var buf bytes.Buffer
	sh.out = bufio.NewWriter(&buf)
	if err := sh.dispatch([]string{"thread", "t"}); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"invoke nosuchtask",
		"invoke Padp Incell=/missing Outcell=o",
		"invoke Padp Incell=/s", // missing output binding
		"move 99",
		"annotate 99 text",
		"meta ghost",
	} {
		runErr(t, sh, line)
	}
}

func TestShellWorkspaceCommand(t *testing.T) {
	sh, buf := newTestShell(t)
	run(t, sh, buf, "import /s shifter 3")
	run(t, sh, buf, "thread demo")
	run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=l")
	// Branch so the workspace is the union of two frontier states.
	run(t, sh, buf, "move initial")
	run(t, sh, buf, "invoke create-logic-description Spec=/s Outlogic=l2")
	out := run(t, sh, buf, "workspace")
	if !strings.Contains(out, "l :") || !strings.Contains(out, "l2 :") {
		t.Errorf("workspace missing a branch: %q", out)
	}
	// Scope only shows the current branch.
	out = run(t, sh, buf, "scope")
	if strings.Contains(out, "l :") {
		t.Errorf("scope leaked the other branch: %q", out)
	}
}

func TestShellMemoReplay(t *testing.T) {
	old := *useMemo
	*useMemo = true
	defer func() { *useMemo = old }()

	sys, err := core.New(shellConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := &shell{sys: sys, out: bufio.NewWriter(&buf)}

	out := run(t, sh, &buf, "memo")
	if !strings.Contains(out, "0 entries, 0 hits") {
		t.Errorf("memo before work: %q", out)
	}
	run(t, sh, &buf, "import /s shifter 3")
	run(t, sh, &buf, "thread demo")
	run(t, sh, &buf, "invoke create-logic-description Spec=/s Outlogic=l")
	out = run(t, sh, &buf, "memo")
	if !strings.Contains(out, "2 entries, 0 hits, 2 misses") {
		t.Errorf("memo after cold run: %q", out)
	}

	// Redo record 1 through the rework path: both steps should hit.
	run(t, sh, &buf, "move initial")
	out = run(t, sh, &buf, "replay 1")
	if !strings.Contains(out, "create-logic-description") {
		t.Errorf("replay progress: %q", out)
	}
	out = run(t, sh, &buf, "memo")
	if !strings.Contains(out, "2 entries, 2 hits, 2 misses") {
		t.Errorf("memo after replay: %q", out)
	}

	runErr(t, sh, "replay")    // missing id
	runErr(t, sh, "replay x")  // non-numeric id
	runErr(t, sh, "replay 99") // unknown record
}

func TestShellMemoDisabled(t *testing.T) {
	sh, buf := newTestShell(t)
	out := run(t, sh, buf, "memo")
	if !strings.Contains(out, "memo cache disabled") {
		t.Errorf("memo without cache: %q", out)
	}
	runErr(t, sh, "replay 1") // no thread
}

func TestShellRecover(t *testing.T) {
	oldDir, oldEvery := *walDir, *fsyncEvery
	*walDir, *fsyncEvery = t.TempDir(), 1
	defer func() { *walDir, *fsyncEvery = oldDir, oldEvery }()

	sys, err := core.New(shellConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := &shell{sys: sys, out: bufio.NewWriter(&buf)}
	run(t, sh, &buf, "import /s shifter 3")
	run(t, sh, &buf, "thread demo")
	run(t, sh, &buf, "invoke create-logic-description Spec=/s Outlogic=l")

	// Log alone: the shell swaps in a fresh System rebuilt from the WAL.
	out := run(t, sh, &buf, "recover")
	if !strings.Contains(out, "1 threads") {
		t.Errorf("recover: %q", out)
	}
	out = run(t, sh, &buf, "scope")
	if !strings.Contains(out, "l : version 1") {
		t.Errorf("recovered scope: %q", out)
	}

	// Snapshot + tail: save (checkpointing the log), do more work, recover
	// from the snapshot directory.
	snap := t.TempDir()
	run(t, sh, &buf, "save "+snap)
	run(t, sh, &buf, "invoke PLA-generation Inlogic=l Outcell=l.pla")
	out = run(t, sh, &buf, "recover "+snap)
	if !strings.Contains(out, "1 threads") {
		t.Errorf("recover with snapshot: %q", out)
	}
	out = run(t, sh, &buf, "scope")
	if !strings.Contains(out, "l.pla : version 1") {
		t.Errorf("post-checkpoint delta lost: %q", out)
	}
	if err := runErr(t, sh, "recover a b"); err == nil {
		t.Error("recover with two args accepted")
	}
	if err := sh.sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUsageFlagOrder pins the -h contract of the satellite fix: every
// registered flag appears in the usage output, in flagOrder (wal-dir
// before the -fsync-every that modifies it), not alphabetically.
func TestUsageFlagOrder(t *testing.T) {
	var buf bytes.Buffer
	flag.CommandLine.SetOutput(&buf)
	defer flag.CommandLine.SetOutput(nil)
	usage()
	out := buf.String()

	last := -1
	flag.VisitAll(func(f *flag.Flag) {
		i := strings.Index(out, "  -"+f.Name+"\n")
		if i < 0 {
			t.Errorf("flag -%s missing from usage output", f.Name)
		}
	})
	for _, name := range flagOrder {
		i := strings.Index(out, "  -"+name+"\n")
		if i < 0 {
			t.Fatalf("flag -%s missing from usage output", name)
		}
		if i < last {
			t.Errorf("flag -%s printed out of order", name)
		}
		last = i
	}
}
