// taskrun runs one TDL task template standalone, the way the
// dissertation's task manager was spawned per invocation (§4.1). It
// generates (or loads) a behavioral specification, binds the template's
// formal arguments, executes on a simulated cluster, and prints the
// history record.
//
// Usage:
//
//	taskrun -task Structure_Synthesis -nodes 4 -seed 7
//	taskrun -task Mosaico -shifter 4
//	taskrun -list
//	taskrun -man wolfe
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/fault"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/render"
	"papyrus/internal/task"
	"papyrus/internal/tdl"
	"papyrus/internal/templates"
)

func main() {
	taskName := flag.String("task", "Structure_Synthesis", "task template to run")
	nodes := flag.Int("nodes", 4, "simulated workstations")
	seed := flag.Int64("seed", 1, "workload generator seed")
	inputsN := flag.Int("inputs", 5, "generated spec inputs")
	outputsN := flag.Int("outputs", 3, "generated spec outputs")
	depth := flag.Int("depth", 4, "generated spec expression depth")
	shifter := flag.Int("shifter", 0, "use a shifter spec of this width instead of a random one")
	list := flag.Bool("list", false, "list shipped templates and exit")
	man := flag.String("man", "", "print a tool's manual page and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
	stats := flag.Bool("stats", false, "print the metrics registry after the run")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=7,crash=1@100-300,stepfail=Optimize:0.5,stall=0.25:10 (see docs/FAULTS.md)")
	retries := flag.Int("retries", 3, "max attempts per step for transient failures (1 disables retries)")
	backoff := flag.Int64("backoff", 8, "virtual-tick backoff before the first retry (doubles per attempt)")
	workers := flag.Int("workers", 0, "tool-body worker pool size (0 = default; any value yields identical results)")
	backend := flag.String("backend", "", "object-store version-index backend: map, btree, or lsm (docs/STORAGE.md)")
	stepLatency := flag.Duration("steplatency", 0, "wall-clock latency injected per tool body, e.g. 2ms (models real tool spawn cost)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables durability (docs/DURABILITY.md)")
	fsyncEvery := flag.Int64("fsync-every", 1, "group-commit flush interval in virtual ticks (<=1 fsyncs every append)")
	useMemo := flag.Bool("memo", false, "enable the history-based step-result cache (docs/CACHING.md)")
	flag.Parse()

	var metrics *obs.Registry
	var tracer *obs.Tracer
	if *stats {
		metrics = obs.NewRegistry()
	}
	if *tracePath != "" {
		tracer = obs.NewTracer()
		if metrics == nil {
			metrics = obs.NewRegistry()
		}
	}
	var plan *fault.Plan
	if *faults != "" {
		p, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatal(err)
		}
		plan = &p
	}
	cfg := core.Config{
		Nodes: *nodes, ReMigrateEvery: 25, Metrics: metrics, Trace: tracer,
		Fault:   plan,
		Retry:   task.RetryPolicy{MaxAttempts: *retries, BackoffBase: *backoff},
		Workers: *workers, StepLatency: *stepLatency,
		StoreBackend: *backend,
	}
	if *walDir != "" {
		cfg.Durability = &core.DurabilityConfig{Dir: *walDir, FsyncEvery: *fsyncEvery}
	}
	if *useMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := sys.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	if plan != nil {
		fmt.Printf("faults armed: %s (retries=%d, backoff=%d)\n", plan, *retries, *backoff)
	}

	if *list {
		fmt.Print(render.TaskList(templates.Names()))
		return
	}
	if *man != "" {
		page, err := sys.Suite.ManPage(*man)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(page)
		return
	}

	text, err := templates.Lookup(*taskName)
	if err != nil {
		log.Fatal(err)
	}
	tpl, err := tdl.Parse(text)
	if err != nil {
		log.Fatal(err)
	}

	spec := logic.GenBehavior(logic.GenConfig{
		Seed: *seed, Inputs: *inputsN, Outputs: *outputsN, Depth: *depth,
	})
	if *shifter > 0 {
		spec = logic.ShifterBehavior(*shifter)
	}
	if _, err := sys.ImportObject("/gen/spec", oct.TypeBehavioral, oct.Text(spec)); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.ImportObject("/gen/cmd", oct.TypeText, oct.Text("sim\n")); err != nil {
		log.Fatal(err)
	}

	// Bind formals generically: behavioral-spec-shaped inputs get the
	// generated spec; command-shaped inputs get the command file.
	inputs := map[string]string{}
	for _, formal := range tpl.Inputs {
		switch formal {
		case "Musa_Command", "Commands":
			inputs[formal] = "/gen/cmd"
		default:
			inputs[formal] = "/gen/spec"
		}
	}
	outputs := map[string]string{}
	for _, formal := range tpl.Outputs {
		outputs[formal] = "out." + formal
	}

	th := sys.NewThread("taskrun", os.Getenv("USER"))
	rec, err := sys.Invoke(th, *taskName, inputs, outputs)
	if err != nil {
		log.Fatalf("task failed: %v", err)
	}
	fmt.Print(render.ProgressFromRecord(rec))
	fmt.Printf("\nvirtual time: %d ticks on %d workstations\n", sys.Cluster.Now(), *nodes)
	if sys.Memo != nil {
		st := sys.Memo.Snapshot()
		fmt.Printf("memo: %d entries, %d hits, %d misses, %d bytes served\n",
			st.Entries, st.Hits, st.Misses, st.BytesServed)
	}
	for _, ref := range rec.Outputs {
		typ, _ := sys.Inference.TypeOf(ref)
		fmt.Printf("output %-24s type=%s\n", ref, typ)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: %d events written to %s (open in chrome://tracing)\n", tracer.Len(), *tracePath)
	}
	if *stats {
		sys.Cluster.ObserveUtilization()
		fmt.Println()
		if err := metrics.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
