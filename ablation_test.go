package papyrus

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// espresso exact-vs-heuristic split, the placement improvement passes, the
// misII eliminate pass, and inference on/off overhead on the task path.

import (
	"fmt"
	"testing"

	"papyrus/internal/cad/layout"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
)

// BenchmarkAblation_MinimizeExactVsHeuristic contrasts the two espresso
// engines on the same cover. The exact engine buys smaller covers at
// higher cost; Minimize picks the better result, so this quantifies the
// price of exactness.
func BenchmarkAblation_MinimizeExactVsHeuristic(b *testing.B) {
	bh, err := logic.ParseBehavior(logic.GenBehavior(logic.GenConfig{Seed: 9, Inputs: 7, Outputs: 3, Depth: 5}))
	if err != nil {
		b.Fatal(err)
	}
	nw, err := bh.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	cv, err := nw.Collapse()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("combined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv.Minimize()
		}
	})
	b.Run("heuristic-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv.MinimizeHeuristicOnly()
		}
	})
	// Report the quality difference once.
	min := cv.Minimize()
	h := cv.MinimizeHeuristicOnly()
	b.Logf("terms: original %d, combined %d, heuristic-only %d",
		cv.NumTerms(), min.NumTerms(), h.NumTerms())
}

// BenchmarkAblation_PlacementPasses sweeps the pairwise-improvement pass
// budget: more passes, lower wirelength, higher cost.
func BenchmarkAblation_PlacementPasses(b *testing.B) {
	bh, _ := logic.ParseBehavior(logic.GenBehavior(logic.GenConfig{Seed: 4, Inputs: 7, Outputs: 5, Depth: 5}))
	nw, _ := bh.Synthesize()
	nl, err := layout.FromNetwork(nw)
	if err != nil {
		b.Fatal(err)
	}
	for _, passes := range []int{1, 2, 6} {
		b.Run(fmt.Sprintf("passes%d", passes), func(b *testing.B) {
			var hpwl int
			for i := 0; i < b.N; i++ {
				pl, err := layout.Place(nl, layout.PlaceConfig{Passes: passes})
				if err != nil {
					b.Fatal(err)
				}
				hpwl = pl.HPWL()
			}
			b.ReportMetric(float64(hpwl), "hpwl")
		})
	}
}

// BenchmarkAblation_InferenceOverhead measures the metadata-inference
// observer's cost on the task execution path (the paper's claim that
// inference piggybacks on history recording "for free").
func BenchmarkAblation_InferenceOverhead(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := core.New(core.Config{Nodes: 2, DisableInference: disable})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.ImportObject("/s", oct.TypeBehavioral,
				oct.Text(logic.ShifterBehavior(4))); err != nil {
				b.Fatal(err)
			}
			th := sys.NewThread("t", "u")
			b.StartTimer()
			if _, err := sys.Invoke(th, "PLA-generation",
				map[string]string{"Inlogic": "/s"},
				map[string]string{"Outcell": "out"}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inference-on", func(b *testing.B) { run(b, false) })
	b.Run("inference-off", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_MigrationDelay sweeps the migration cost: at high
// delays, distribution stops paying off for short steps.
func BenchmarkAblation_MigrationDelay(b *testing.B) {
	tpl := map[string]string{"F": `task F {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {misII -o O1 A}
step S2 {B} {O2} {misII -o O2 B}
step S3 {C} {O3} {misII -o O3 C}
step S4 {D} {O4} {misII -o O4 D}
`}
	for _, delay := range []int64{1, 50, 500} {
		b.Run(fmt.Sprintf("delay%d", delay), func(b *testing.B) {
			var ticks int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.New(core.Config{Nodes: 4, MigrationDelay: delay, ExtraTemplates: tpl})
				if err != nil {
					b.Fatal(err)
				}
				inputs := map[string]string{}
				for _, n := range []string{"A", "B", "C", "D"} {
					if _, err := sys.ImportObject("/"+n, oct.TypeBehavioral,
						oct.Text(logic.ShifterBehavior(4))); err != nil {
						b.Fatal(err)
					}
					inputs[n] = "/" + n
				}
				th := sys.NewThread("t", "u")
				b.StartTimer()
				if _, err := sys.Invoke(th, "F", inputs,
					map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"}); err != nil {
					b.Fatal(err)
				}
				ticks = sys.Cluster.Now()
			}
			b.ReportMetric(float64(ticks), "vticks")
		})
	}
}
