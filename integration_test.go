package papyrus

// A full-system integration narrative: two designers take a design from
// behavioral specifications through exploration, cooperation, joining,
// storage reclamation, metadata queries, rebuild, and session persistence
// — every subsystem crossing paths the way the dissertation's scenario
// chapters describe.

import (
	"strings"
	"testing"

	"papyrus/internal/activity"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/history"
	"papyrus/internal/infer"
	"papyrus/internal/oct"
	"papyrus/internal/reclaim"
	"papyrus/internal/sds"
)

func TestDissertationWalkthrough(t *testing.T) {
	sys, err := core.New(core.Config{Nodes: 4, ReMigrateEvery: 25, SweepEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	// --- Act 1: Randy explores the shifter (Ch. 3) -------------------
	_, err = sys.ImportObject("/specs/shifter", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
	must(err)
	_, err = sys.ImportObject("/specs/shifter.cmd", oct.TypeText, oct.Text("set d0 1\nsim\nexpect q0 1\n"))
	must(err)

	randy := sys.NewThread("Shifter-synthesis", "randy")
	_, err = sys.Invoke(randy, "create-logic-description",
		map[string]string{"Spec": "/specs/shifter"},
		map[string]string{"Outlogic": "shifter.logic"})
	must(err)
	_, err = sys.Invoke(randy, "logic-simulator",
		map[string]string{"Inlogic": "shifter.logic", "Commands": "/specs/shifter.cmd"},
		map[string]string{"Report": "shifter.rep"})
	must(err)
	simPoint := randy.Cursor()

	// Standard-cell branch, then rework to the PLA branch.
	_, err = sys.Invoke(randy, "standard-cell-place-and-route",
		map[string]string{"Inlogic": "shifter.logic"},
		map[string]string{"Outcell": "shifter.sc"})
	must(err)
	must(randy.MoveCursor(simPoint))
	must(randy.Annotate(simPoint, "The Start of PLA Approach"))
	_, err = sys.Invoke(randy, "PLA-generation",
		map[string]string{"Inlogic": "shifter.logic"},
		map[string]string{"Outcell": "shifter.pla"})
	must(err)
	if len(randy.Frontier()) != 2 {
		t.Fatalf("exploration should leave 2 frontiers, got %d", len(randy.Frontier()))
	}

	// --- Act 2: Mary builds the adder; they cooperate (Ch. 3) --------
	_, err = sys.ImportObject("/specs/adder", oct.TypeBehavioral, oct.Text(logic.AdderBehavior(2)))
	must(err)
	mary := sys.NewThread("Arithmetic-unit", "mary")
	_, err = sys.Invoke(mary, "create-logic-description",
		map[string]string{"Spec": "/specs/adder"},
		map[string]string{"Outlogic": "adder.logic"})
	must(err)

	space := sys.Space("A")
	space.Register(randy.ID())
	space.Register(mary.ID())
	_, err = sys.Activity.MoveToSDS(randy, "shifter.logic", space)
	must(err)
	_, err = sys.Activity.MoveFromSDS(space, "shifter.logic", 0, mary, "marys.shifter", true,
		sds.Predicate(func(prev, next *oct.Object) bool { return true }))
	must(err)
	_, err = sys.Activity.MoveToSDS(randy, "shifter.logic", space)
	must(err)
	if n := mary.Notifications(); len(n) != 1 {
		t.Fatalf("mary notifications %d, want 1", len(n))
	}

	// --- Act 3: the ALU join and continued work (Fig 3.10) -----------
	alu, err := sys.Activity.Join(randy, mary, randy.Frontier()[0], mary.Frontier()[0], "ALU", "randy")
	must(err)
	_, err = sys.Invoke(alu, "standard-cell-place-and-route",
		map[string]string{"Inlogic": "adder.logic"},
		map[string]string{"Outcell": "alu.cell"})
	must(err)
	_, err = sys.Invoke(alu, "place-pads",
		map[string]string{"Incell": "alu.cell"},
		map[string]string{"Outcell": "alu.padded"})
	must(err)

	// --- Act 4: metadata queries (Ch. 6) ------------------------------
	padded, err := alu.ResolveInput("alu.padded")
	must(err)
	typ, ok := sys.Inference.TypeOf(padded)
	if !ok || typ != oct.TypeLayout {
		t.Errorf("inferred type %s ok=%v", typ, ok)
	}
	if comps := sys.Inference.RelatedBy(infer.RelConfiguration, padded); len(comps) == 0 {
		t.Error("no configuration components for the padded ALU cell")
	}
	area, err := sys.Inference.AttrOf(padded, "area")
	must(err)
	if area == "" || area == "0" {
		t.Errorf("area attribute %q", area)
	}
	ops, err := sys.Inference.Graph().Derivation(padded)
	must(err)
	if len(ops) < 3 {
		t.Errorf("derivation depth %d, want >= 3", len(ops))
	}

	// --- Act 5: the spec changes; rebuild on demand (§1.4) ------------
	_, err = sys.ImportObject("/specs/adder", oct.TypeBehavioral, oct.Text(logic.AdderBehavior(3)))
	must(err)
	stale, err := sys.OutOfDate(padded)
	must(err)
	if !stale {
		t.Error("padded ALU not reported stale after spec edit")
	}
	fresh, err := sys.Rebuild(padded)
	must(err)
	if fresh.Version <= padded.Version {
		t.Errorf("rebuild version %d not newer than %d", fresh.Version, padded.Version)
	}

	// --- Act 6: reclamation (Ch. 5) -----------------------------------
	// Iterate simulations on the ALU thread, then GC the rounds.
	var rounds [][]*history.Record
	for i := 0; i < 4; i++ {
		rec, err := sys.Invoke(alu, "logic-simulator",
			map[string]string{"Inlogic": "adder.logic", "Commands": "/specs/shifter.cmd"},
			map[string]string{"Report": "alu.rep"})
		if err != nil {
			// The shifter command file sets d0, which the adder lacks;
			// use a trivial command file instead.
			_, err2 := sys.ImportObject("/specs/trivial.cmd", oct.TypeText, oct.Text("sim\n"))
			must(err2)
			rec, err = sys.Invoke(alu, "logic-simulator",
				map[string]string{"Inlogic": "adder.logic", "Commands": "/specs/trivial.cmd"},
				map[string]string{"Report": "alu.rep"})
			must(err)
		}
		rounds = append(rounds, []*history.Record{rec})
	}
	hints := reclaim.DetectIterations(alu)
	if len(hints) == 0 {
		t.Fatal("iteration detection found nothing")
	}
	before := sys.Store.ObjectCount()
	removed, err := sys.Reclaimer.CollectIterations(alu, hints[0])
	must(err)
	if removed == 0 {
		t.Error("iteration GC removed nothing")
	}
	_, err = sys.Reclaimer.SweepObjects()
	must(err)
	if sys.Store.ObjectCount() >= before {
		t.Error("sweep did not shrink the store")
	}
	_ = rounds

	// --- Act 7: persistence across sessions ---------------------------
	dir := t.TempDir()
	must(sys.SaveSession(dir))
	restored, err := core.LoadSession(core.Config{Nodes: 4}, dir)
	must(err)
	aluRestored := findThread(t, restored, "ALU")
	if _, err := aluRestored.ResolveInput("alu.padded"); err != nil {
		t.Errorf("restored session lost alu.padded: %v", err)
	}
	// The ALU thread carries a full copy of Randy's history (Fig 3.10:
	// the merged thread "works as if it had been created from scratch"),
	// so the annotation appears there too.
	if _, ok := aluRestored.FindAnnotation("The Start of PLA Approach"); !ok {
		t.Error("join did not carry the annotated history")
	}
	randyRestored := findThread(t, restored, "Shifter-synthesis")
	if _, ok := randyRestored.FindAnnotation("The Start of PLA Approach"); !ok {
		t.Error("annotation lost across sessions")
	}

	// The rendered view still tells the story.
	view := restored.RenderThread(randyRestored)
	if !strings.Contains(view, "PLA-generation") || !strings.Contains(view, "standard-cell-place-and-route") {
		t.Errorf("restored render lost branches:\n%s", view)
	}
}

func findThread(t *testing.T, sys *core.System, name string) *activity.Thread {
	t.Helper()
	for _, th := range sys.Activity.Threads() {
		if th.Name() == name {
			return th
		}
	}
	t.Fatalf("thread %q not found", name)
	return nil
}
