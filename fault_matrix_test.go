package papyrus

// The fault-matrix integration test: a seeded workload is run under a
// matrix of fault plans — none, transient step failures, a node crash
// with recovery, migration stalls, and all combined — and each cell must
// (a) still commit through retry/re-migration recovery, (b) export
// byte-identical stats across two runs of the same seed, and (c) leave
// exactly one OCT version per object (no double-applied writes).
// CI runs this file with -count=2 to also catch cross-run state leaks
// (.github/workflows/ci.yml, docs/FAULTS.md).

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/fault"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/task"
	"papyrus/internal/workload"
)

// crashyTemplate fans four fixed-cost steps across the cluster so a
// planned crash deterministically lands on a busy node.
const crashyTemplate = `task Crashy {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {burn -o O1 A}
step S2 {B} {O2} {burn -o O2 B}
step S3 {C} {O3} {burn -o O3 C}
step S4 {D} {O4} {burn -o O4 D}
`

func faultWorkload(t *testing.T, planText string, workers int) (string, *core.System, *obs.Registry) {
	t.Helper()
	return faultWorkloadDurable(t, planText, workers, nil)
}

// faultWorkloadDurable is faultWorkload with an optional write-ahead
// log: the batched group-commit fault cell runs the same seeded plan
// with durability armed and must be indistinguishable outside the
// wal.* namespace.
func faultWorkloadDurable(t *testing.T, planText string, workers int, durable *core.DurabilityConfig) (string, *core.System, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	var plan *fault.Plan
	if planText != "" {
		p, err := fault.ParsePlan(planText)
		if err != nil {
			t.Fatal(err)
		}
		plan = &p
	}
	sys, err := core.New(core.Config{
		Nodes:          4,
		ReMigrateEvery: 20,
		Workers:        workers,
		Metrics:        reg,
		ExtraTemplates: map[string]string{"Crashy": crashyTemplate},
		Fault:          plan,
		Retry:          task.RetryPolicy{MaxAttempts: 4, BackoffBase: 8},
		Durability:     durable,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Suite.Register(&cad.Tool{
		Name: "burn", Brief: "fixed-cost test tool", Man: "fixed-cost test tool",
		TSD:  cad.TSD{Writes: oct.TypeLogic},
		Cost: func(in []*oct.Object, opts []string) float64 { return 100 },
		Run: func(ctx *cad.Ctx) error {
			return ctx.PutOutput(0, oct.TypeLogic, ctx.Inputs[0].Data)
		},
	})
	inputs := map[string]oct.Ref{}
	for _, n := range []string{"A", "B", "C", "D"} {
		ref, err := sys.ImportObject("/spec/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
		if err != nil {
			t.Fatal(err)
		}
		inputs[n] = ref
	}
	rec, err := sys.Tasks.RunTask(task.Invocation{
		Task:   "Crashy",
		Inputs: inputs,
		Outputs: map[string]string{
			"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4",
		},
	})
	if err != nil {
		t.Fatalf("plan %q: task did not survive: %v", planText, err)
	}
	if len(rec.Steps) != 4 {
		t.Fatalf("plan %q: %d steps recorded, want 4", planText, len(rec.Steps))
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "makespan %d\n", sys.Cluster.Now())
	return buf.String(), sys, reg
}

func TestFaultMatrixByteIdenticalStats(t *testing.T) {
	plans := []string{
		"",
		"seed=7",
		"seed=7,stepfail=*:0.6:2",
		"seed=7,crash=1@40-600",
		"seed=7,stall=0.6:9",
		"seed=7,crash=1@40-600,stepfail=*:0.5:2,stall=0.5:9",
	}
	for _, plan := range plans {
		// Repeat-run determinism at the default pool size, then
		// worker-count invariance: the batch schedule must make the pool
		// size unobservable even while faults, retries, and crashes fire.
		first, _, _ := faultWorkload(t, plan, 0)
		second, _, _ := faultWorkload(t, plan, 0)
		if first != second {
			t.Errorf("plan %q: stats export not byte-identical across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				plan, first, second)
		}
		for _, workers := range []int{1, 4, 16} {
			got, _, _ := faultWorkload(t, plan, workers)
			if got != first {
				t.Errorf("plan %q: stats export diverges at workers=%d:\n--- workers=%d ---\n%s--- default ---\n%s",
					plan, workers, workers, got, first)
			}
		}
	}
}

func TestFaultMatrixFaultsActuallyFire(t *testing.T) {
	// The matrix is only meaningful if its fault cells inject something;
	// decisions are pure hashes of the seed, so these are deterministic.
	_, _, reg := faultWorkload(t, "seed=7,stepfail=*:0.6:2", 0)
	if got := reg.Counter("fault.injected.stepfail"); got < 1 {
		t.Errorf("fault.injected.stepfail = %d, want >= 1", got)
	}
	_, _, reg = faultWorkload(t, "seed=7,stall=1:9", 0)
	if got := reg.Counter("fault.injected.stall"); got < 1 {
		t.Errorf("fault.injected.stall = %d, want >= 1", got)
	}
}

// TestCrashedNodeRecoveryNoDuplicateVersions is the acceptance scenario:
// a workstation crashes under a running step; the task must complete via
// step retry onto surviving nodes and the store must hold exactly one
// version of every object.
func TestCrashedNodeRecoveryNoDuplicateVersions(t *testing.T) {
	_, sys, reg := faultWorkload(t, "seed=7,crash=1@40-600", 0)
	if got := reg.Counter("sprite.node.crash"); got != 1 {
		t.Errorf("sprite.node.crash = %d, want 1", got)
	}
	if got := reg.Counter("sprite.proc.crashkill"); got < 1 {
		t.Errorf("sprite.proc.crashkill = %d, want >= 1 (crash must hit a running step)", got)
	}
	if got := reg.Counter("task.step.retry"); got < 1 {
		t.Errorf("task.step.retry = %d, want >= 1", got)
	}
	if got := reg.Counter("task.run.commit"); got != 1 {
		t.Errorf("task.run.commit = %d, want 1", got)
	}
	if got := reg.Counter("task.run.restart"); got != 0 {
		t.Errorf("task.run.restart = %d, want 0 (retries must not consume restarts)", got)
	}
	for _, name := range sys.Store.Names() {
		if vs := sys.Store.Versions(name); len(vs) != 1 {
			t.Errorf("object %s has %d versions, want 1 (duplicate write after retry)", name, len(vs))
		}
	}
	for _, out := range []string{"o1", "o2", "o3", "o4"} {
		if _, err := sys.Store.Get(oct.Ref{Name: out}); err != nil {
			t.Errorf("output %s missing after recovery: %v", out, err)
		}
	}
}

// walFilteredStats renders the registry without the wal.* namespace —
// the only export a durability mode may add — plus the makespan, so
// durable and non-durable cells of the same seeded plan are comparable.
func walFilteredStats(t *testing.T, reg *obs.Registry, sys *core.System) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteTextFiltered(&buf, func(name string) bool {
		return !strings.HasPrefix(name, "wal.")
	}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "makespan %d\n", sys.Cluster.Now())
	return buf.String()
}

// runStormCell drives the generated storm workload profile — multi-
// session abort/retry storms under its own seeded fault plan — and
// returns the memo-filtered stats export and the final system. The memo
// namespace is the one export a cache may add (docs/CACHING.md).
func runStormCell(t *testing.T, withMemo bool) (string, *core.System, *obs.Registry) {
	t.Helper()
	w, err := workload.Generate(workload.Spec{
		Profile: "storm", Seed: 11, Sessions: 3, Depth: 5, Fanout: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := w.CoreConfig(core.Config{Nodes: 4, DisableInference: true, Metrics: reg})
	if withMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.RunInProcess(sys, w, workload.Options{}); err != nil {
		t.Fatalf("storm did not survive its own fault plan: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WriteTextFiltered(&buf, func(name string) bool {
		return !strings.HasPrefix(name, "memo.")
	}); err != nil {
		t.Fatal(err)
	}
	return buf.String(), sys, reg
}

// TestFaultMatrixStormWorkload is the generated-workload cell of the
// matrix: the E15 storm profile (per-session fault arming, abort/erase
// salvage rounds) must inject real faults, retry through them, commit
// every round, leave exactly one OCT version per object name, and be
// byte-identical across repeat runs and across memo on/off outside the
// memo.* namespace.
func TestFaultMatrixStormWorkload(t *testing.T) {
	first, sys, reg := runStormCell(t, false)
	if got := reg.Counter("fault.injected.stepfail"); got < 1 {
		t.Errorf("fault.injected.stepfail = %d, want >= 1 (the storm plan must fire)", got)
	}
	if got := reg.Counter("task.step.retry"); got < 1 {
		t.Errorf("task.step.retry = %d, want >= 1", got)
	}
	for _, name := range sys.Store.Names() {
		if vs := sys.Store.Versions(name); len(vs) != 1 {
			t.Errorf("object %s has %d versions, want 1 (duplicate write after abort/retry)", name, len(vs))
		}
	}
	wantVersions := sys.Store.VersionMapText()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	second, sys2, _ := runStormCell(t, false)
	if second != first {
		t.Errorf("storm stats not byte-identical across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		stats, msys, mreg := runStormCell(t, true)
		if stats != first {
			t.Errorf("memo run %d: filtered stats diverge from the memo-free reference:\n%s\nvs\n%s", i, stats, first)
		}
		if got := msys.Store.VersionMapText(); got != wantVersions {
			t.Errorf("memo run %d: version map diverges:\n%s\nvs\n%s", i, got, wantVersions)
		}
		if got := mreg.Counter("memo.miss"); got < 1 {
			t.Errorf("memo run %d: memo.miss = %d, want >= 1 (the cache must have been keyed)", i, got)
		}
		if err := msys.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultMatrixGroupCommitDurability is the batched group-commit
// fault cell: the combined fault plan at 8 workers, re-run with the
// write-ahead log in strict (fsync-every-append) and batched
// (fsync-every-8) modes. Both must survive the faults and be
// byte-identical to the non-durable reference outside wal.* — group
// commit may only change how appends reach disk, never what the run
// computes.
func TestFaultMatrixGroupCommitDurability(t *testing.T) {
	const plan = "seed=7,crash=1@40-600,stepfail=*:0.5:2,stall=0.5:9"
	_, refSys, refReg := faultWorkload(t, plan, 8)
	wantStats := walFilteredStats(t, refReg, refSys)
	wantVersions := refSys.Store.VersionMapText()

	for _, fsyncEvery := range []int64{1, 8} {
		_, sys, reg := faultWorkloadDurable(t, plan, 8,
			&core.DurabilityConfig{Dir: t.TempDir(), FsyncEvery: fsyncEvery})
		if got := walFilteredStats(t, reg, sys); got != wantStats {
			t.Errorf("fsyncEvery=%d: stats diverge from the non-durable reference:\n%s\nvs\n%s",
				fsyncEvery, got, wantStats)
		}
		if got := sys.Store.VersionMapText(); got != wantVersions {
			t.Errorf("fsyncEvery=%d: version map diverges:\n%s\nvs\n%s", fsyncEvery, got, wantVersions)
		}
		if got := reg.Counter("wal.append.records"); got < 1 {
			t.Errorf("fsyncEvery=%d: wal.append.records = %d, want >= 1 (the log must have been exercised)", fsyncEvery, got)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
