module papyrus

go 1.22
