.PHONY: check vet build test fmt

# The repository gate: everything CI would run, stdlib toolchain only.
check: vet build test fmt

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
