.PHONY: check coverage perfgate reclaimgate profile lint vet build test fmt

# The repository gate: exactly what CI runs (scripts/check.sh), stdlib
# toolchain only. Keep this the single local gate.
check:
	./scripts/check.sh

# Coverage ratchet against scripts/coverage_floor.txt; raise the floor
# with `./scripts/coverage.sh -record` when coverage improves.
coverage:
	./scripts/coverage.sh

# Perf ratchet against scripts/perf_floor.txt (E11 speedup floor and
# allocs/step ceiling); re-record the ceiling with
# `./scripts/perfgate.sh -record` when the hot path gets cheaper.
perfgate:
	./scripts/perfgate.sh

# Bounded-memory ratchet against scripts/reclaim_floor.txt (the E17
# reclaim soak's live/written ratio ceiling); re-record with
# `./scripts/reclaimgate.sh -record` when reclamation gets tighter.
reclaimgate:
	./scripts/reclaimgate.sh

# Local profiling bundle in perf/: pprof CPU + heap profiles and the
# alloc-annotated E11 scale table, plus the hot-path microbenchmarks.
# Inspect with `go tool pprof perf/cpu.pprof`.
profile:
	mkdir -p perf
	go run ./cmd/benchtool -exp scale -scalesessions 16 -scaleworkers 1,4,8 \
		-benchmem -cpuprofile perf/cpu.pprof -memprofile perf/mem.pprof \
		-scaleout perf/scale.json
	go test -run - -bench . -benchmem . ./internal/oct ./internal/memo ./internal/wal \
		| tee perf/microbench.txt

# staticcheck + govulncheck at the versions pinned in scripts/lint.sh;
# skips tools that are not installed locally (CI installs them).
lint:
	./scripts/lint.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race -vet=all ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
