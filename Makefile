.PHONY: check coverage lint vet build test fmt

# The repository gate: exactly what CI runs (scripts/check.sh), stdlib
# toolchain only. Keep this the single local gate.
check:
	./scripts/check.sh

# Coverage ratchet against scripts/coverage_floor.txt; raise the floor
# with `./scripts/coverage.sh -record` when coverage improves.
coverage:
	./scripts/coverage.sh

# staticcheck + govulncheck at the versions pinned in scripts/lint.sh;
# skips tools that are not installed locally (CI installs them).
lint:
	./scripts/lint.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race -vet=all ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
