package papyrus

// The crash-recovery matrix: the E10 fault workload runs with write-ahead
// logging armed, then the log is cut at every record boundary and at
// three offsets inside every frame — simulating a writer killed at any
// byte — and each cut must recover to a state that is a prefix of the
// uninterrupted run: no phantom versions, no duplicates, no per-name
// version holes. The companion property test proves snapshot-at-k plus
// log replay reproduces the in-memory version map for every prefix k,
// byte-identically across worker counts. CI runs this file under -race
// -count=2 (.github/workflows/ci.yml, docs/DURABILITY.md).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/fault"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
	"papyrus/internal/task"
	"papyrus/internal/wal"
	"papyrus/internal/workload"
)

// recoveryPlan is the full E10 combination: a node crash, transient step
// failures, and migration stalls, all while every commit is logged.
const recoveryPlan = "seed=7,crash=1@40-600,stepfail=*:0.5:2,stall=0.5:9"

// durableFaultWorkload is faultWorkload with write-ahead logging armed:
// strict fsync-per-append and a segment size large enough that the whole
// run lands in one segment file (the matrix cuts it at arbitrary bytes).
func durableFaultWorkload(t *testing.T, planText, walDir string, workers int) *core.System {
	t.Helper()
	var plan *fault.Plan
	if planText != "" {
		p, err := fault.ParsePlan(planText)
		if err != nil {
			t.Fatal(err)
		}
		plan = &p
	}
	sys, err := core.New(core.Config{
		Nodes:          4,
		ReMigrateEvery: 20,
		Workers:        workers,
		Metrics:        obs.NewRegistry(),
		ExtraTemplates: map[string]string{"Crashy": crashyTemplate},
		Fault:          plan,
		Retry:          task.RetryPolicy{MaxAttempts: 4, BackoffBase: 8},
		Durability: &core.DurabilityConfig{
			Dir: walDir, FsyncEvery: 1, SegmentBytes: 1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Suite.Register(&cad.Tool{
		Name: "burn", Brief: "fixed-cost test tool", Man: "fixed-cost test tool",
		TSD:  cad.TSD{Writes: oct.TypeLogic},
		Cost: func(in []*oct.Object, opts []string) float64 { return 100 },
		Run: func(ctx *cad.Ctx) error {
			return ctx.PutOutput(0, oct.TypeLogic, ctx.Inputs[0].Data)
		},
	})
	inputs := map[string]oct.Ref{}
	for _, n := range []string{"A", "B", "C", "D"} {
		ref, err := sys.ImportObject("/spec/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
		if err != nil {
			t.Fatal(err)
		}
		inputs[n] = ref
	}
	rec, err := sys.Tasks.RunTask(task.Invocation{
		Task:   "Crashy",
		Inputs: inputs,
		Outputs: map[string]string{
			"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4",
		},
	})
	if err != nil {
		t.Fatalf("plan %q: task did not survive: %v", planText, err)
	}
	if len(rec.Steps) != 4 {
		t.Fatalf("plan %q: %d steps recorded, want 4", planText, len(rec.Steps))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// readSingleSegment returns the raw bytes of the run's one log segment.
func readSingleSegment(t *testing.T, walDir string) []byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("%d segments, want 1 (raise SegmentBytes)", len(names))
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertPrefixState asserts the recovered store is a consistent prefix of
// the uninterrupted run: every recovered version existed in the full run
// (no phantoms, no divergent content) and per-name versions are
// contiguous from 1 (no holes, no duplicates).
func assertPrefixState(t *testing.T, cut int, full map[string]bool, s *oct.Store) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSuffix(s.VersionMapText(), "\n"), "\n") {
		// The trailing "total versions=..." summary legitimately shrinks
		// with the prefix; every per-version line must exist in the full run.
		if line == "" || strings.HasPrefix(line, "total ") {
			continue
		}
		if !full[line] {
			t.Errorf("cut %d: phantom version map line %q", cut, line)
		}
	}
	for _, name := range s.Names() {
		latest := s.LatestVersion(name)
		seen := map[int]bool{}
		for _, v := range s.Versions(name) {
			if seen[v.Version] {
				t.Errorf("cut %d: duplicate version %s@%d", cut, name, v.Version)
			}
			seen[v.Version] = true
		}
		for v := 1; v <= latest; v++ {
			if !seen[v] {
				t.Errorf("cut %d: version hole %s@%d (latest %d)", cut, name, v, latest)
			}
		}
	}
}

// TestRecoveryMatrixKillAtEveryByte is the acceptance scenario: the E10
// workload's log is truncated at every record boundary and at three
// offsets inside every frame, and every cut must recover cleanly.
func TestRecoveryMatrixKillAtEveryByte(t *testing.T) {
	walDir := t.TempDir()
	sys := durableFaultWorkload(t, recoveryPlan, walDir, 0)
	fullMap := sys.Store.VersionMapText()
	full := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(fullMap, "\n"), "\n") {
		full[line] = true
	}

	data := readSingleSegment(t, walDir)
	recs, ends, valid := wal.Scan(data)
	if valid != len(data) || len(recs) == 0 {
		t.Fatalf("uninterrupted log invalid: %d records, %d/%d bytes valid", len(recs), valid, len(data))
	}

	// Every record boundary (including the empty log), plus three
	// mid-frame offsets per record: just inside the frame, the middle,
	// and one byte short of the end.
	cuts := map[int]bool{0: true}
	prev := 0
	for _, end := range ends {
		cuts[end] = true
		for _, mid := range []int{prev + 1, (prev + end) / 2, end - 1} {
			if mid > prev && mid < end {
				cuts[mid] = true
			}
		}
		prev = end
	}

	// Every cut recovers into every version-index backend: replay is a
	// store-level contract, not a property of the reference map index
	// (docs/STORAGE.md).
	scratch := t.TempDir()
	for cut := range cuts {
		dir := filepath.Join(scratch, fmt.Sprintf("cut-%06d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		for _, backend := range oct.Backends() {
			s, stats, err := oct.RecoverWithOptions(nil, dir, nil, oct.Options{Backend: backend})
			if err != nil {
				t.Fatalf("cut %d backend %s: recovery failed: %v", cut, backend, err)
			}
			assertPrefixState(t, cut, full, s)
			if cut == len(data) {
				if got := s.VersionMapText(); got != fullMap {
					t.Errorf("backend %s: full log recovery differs from in-memory state:\n--- want ---\n%s--- got ---\n%s",
						backend, fullMap, got)
				}
				if stats.Truncated != 0 {
					t.Errorf("backend %s: full log reported %d truncated bytes", backend, stats.Truncated)
				}
			}
		}
	}
	t.Logf("recovered %d cuts x %d backends over %d records (%d bytes)", len(cuts), len(oct.Backends()), len(recs), len(data))
}

// TestRecoveryMatrixWithReclaim is the reclaim dimension of the matrix:
// the deep-rework workload runs with sweeps at every round barrier and a
// non-zero grace period, so the log interleaves commit, remove, and
// reclaim records. The prefix-of-full-run assertion does not apply —
// reclaimed versions legitimately vanish from later states — so each cut
// is held to the contracts that survive physical deletion: disk recovery
// converges byte-for-byte with a direct replay of the cut's valid
// records, re-applying the same records is a no-op (reclaim replays
// idempotently), no per-name duplicates ever appear, and the full log
// recovers the exact pre-close state. Every cut recovers into every
// version-index backend.
func TestRecoveryMatrixWithReclaim(t *testing.T) {
	walDir := t.TempDir()
	w, err := workload.Generate(workload.Spec{Profile: "rework", Seed: 7, Sessions: 2, Depth: 16, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(w.CoreConfig(core.Config{
		Nodes:            4,
		Workers:          4,
		DisableInference: true,
		Metrics:          obs.NewRegistry(),
		ReclaimGrace:     2,
		Durability: &core.DurabilityConfig{
			Dir: walDir, FsyncEvery: 1, SegmentBytes: 1 << 30,
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.RunInProcess(sys, w, workload.Options{ForceRounds: true, SweepEveryRounds: 1}); err != nil {
		t.Fatal(err)
	}
	fullMap := sys.Store.VersionMapText()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	data := readSingleSegment(t, walDir)
	recs, ends, valid := wal.Scan(data)
	if valid != len(data) || len(recs) == 0 {
		t.Fatalf("uninterrupted log invalid: %d records, %d/%d bytes valid", len(recs), valid, len(data))
	}
	reclaims := 0
	for _, r := range recs {
		if r.Type == wal.RecReclaim {
			reclaims++
		}
	}
	if reclaims == 0 {
		t.Fatal("workload produced no reclaim records — the dimension is not exercised")
	}

	cuts := map[int]bool{0: true}
	prev := 0
	for _, end := range ends {
		cuts[end] = true
		for _, mid := range []int{prev + 1, (prev + end) / 2, end - 1} {
			if mid > prev && mid < end {
				cuts[mid] = true
			}
		}
		prev = end
	}

	scratch := t.TempDir()
	for cut := range cuts {
		dir := filepath.Join(scratch, fmt.Sprintf("cut-%06d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		prefix, _, _ := wal.Scan(data[:cut])
		for _, backend := range oct.Backends() {
			s, _, err := oct.RecoverWithOptions(nil, dir, nil, oct.Options{Backend: backend})
			if err != nil {
				t.Fatalf("cut %d backend %s: recovery failed: %v", cut, backend, err)
			}
			recovered := s.VersionMapText()
			// Convergence: disk recovery equals a direct replay of the
			// cut's valid records into a fresh store.
			ref, err := oct.NewStoreWithOptions(oct.Options{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range prefix {
				if _, err := ref.ReplayWALRecord(r); err != nil {
					t.Fatalf("cut %d backend %s: direct replay failed: %v", cut, backend, err)
				}
			}
			if refMap := ref.VersionMapText(); refMap != recovered {
				t.Errorf("cut %d backend %s: recovery diverges from direct replay:\n--- replay ---\n%s--- recovered ---\n%s",
					cut, backend, refMap, recovered)
			}
			// Idempotence: re-applying the same records (the crash-retry
			// shape) must not change the state — reclaim deletes included.
			for _, r := range prefix {
				if _, err := s.ReplayWALRecord(r); err != nil {
					t.Fatalf("cut %d backend %s: re-replay failed: %v", cut, backend, err)
				}
			}
			if again := s.VersionMapText(); again != recovered {
				t.Errorf("cut %d backend %s: re-applying the prefix changed the state:\n--- first ---\n%s--- second ---\n%s",
					cut, backend, recovered, again)
			}
			for _, name := range s.Names() {
				seen := map[int]bool{}
				for _, v := range s.Versions(name) {
					if seen[v.Version] {
						t.Errorf("cut %d backend %s: duplicate version %s@%d", cut, backend, name, v.Version)
					}
					seen[v.Version] = true
				}
			}
			if cut == len(data) && recovered != fullMap {
				t.Errorf("backend %s: full log recovery differs from pre-close state:\n--- want ---\n%s--- got ---\n%s",
					backend, fullMap, recovered)
			}
		}
	}
	t.Logf("recovered %d cuts x %d backends over %d records (%d reclaim records, %d bytes)",
		len(cuts), len(oct.Backends()), len(recs), reclaims, len(data))
}

// TestSnapshotPlusWALEqualsMemory is the compaction property: for every
// prefix length k, a snapshot of the first k records plus a replay of the
// whole log reproduces the uninterrupted run's version map byte for byte
// — overlapping records are skipped idempotently, missing ones are
// applied. The workload runs at several worker counts; the map (and so
// the property's fixed point) must not depend on the pool size.
func TestSnapshotPlusWALEqualsMemory(t *testing.T) {
	var wantMap string
	for _, workers := range []int{1, 8} {
		walDir := t.TempDir()
		sys := durableFaultWorkload(t, recoveryPlan, walDir, workers)
		fullMap := sys.Store.VersionMapText()
		if wantMap == "" {
			wantMap = fullMap
		} else if fullMap != wantMap {
			t.Fatalf("workers=%d: version map diverged from workers=1:\n--- want ---\n%s--- got ---\n%s",
				workers, wantMap, fullMap)
		}

		data := readSingleSegment(t, walDir)
		recs, _, valid := wal.Scan(data)
		if valid != len(data) {
			t.Fatalf("workers=%d: log has invalid tail", workers)
		}
		// The snapshot backend rotates with k and recovery always lands on
		// the next backend over, so every k exercises a paged or JSON
		// snapshot being restored by a differently-indexed store — the
		// format is self-describing (docs/STORAGE.md).
		backends := oct.Backends()
		for k := 0; k <= len(recs); k++ {
			snapBackend := backends[k%len(backends)]
			recoverBackend := backends[(k+1)%len(backends)]
			base, err := oct.NewStoreWithOptions(oct.Options{Backend: snapBackend})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs[:k] {
				if _, err := base.ReplayWALRecord(r); err != nil {
					t.Fatalf("workers=%d k=%d: building snapshot: %v", workers, k, err)
				}
			}
			var snap bytes.Buffer
			if err := base.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			got, _, err := oct.RecoverWithOptions(&snap, walDir, nil, oct.Options{Backend: recoverBackend})
			if err != nil {
				t.Fatalf("workers=%d k=%d: recovery failed (%s snapshot into %s store): %v",
					workers, k, snapBackend, recoverBackend, err)
			}
			if gotMap := got.VersionMapText(); gotMap != fullMap {
				t.Errorf("workers=%d k=%d: %s snapshot + replay into %s differs from memory:\n--- want ---\n%s--- got ---\n%s",
					workers, k, snapBackend, recoverBackend, fullMap, gotMap)
			}
		}
	}
}
