// Quickstart: build a Papyrus design environment, import a behavioral
// specification, and run the dissertation's Structure_Synthesis task
// (Fig 4.2) end to end — behavioral description to padded, routed layout
// with simulation and statistics — on a simulated 4-workstation network.
package main

import (
	"fmt"
	"log"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
	"papyrus/internal/render"
	"papyrus/internal/templates"
)

func main() {
	sys, err := core.New(core.Config{Nodes: 4, ReMigrateEvery: 25})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(render.TaskList(templates.Names()))

	// Import the seed objects: a 4-bit shifter specification and a
	// simulation command file.
	if _, err := sys.ImportObject("/specs/shifter", oct.TypeBehavioral,
		oct.Text(logic.ShifterBehavior(4))); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.ImportObject("/specs/shifter.cmd", oct.TypeText, oct.Text(`
set d0 1
set s 0
sim
expect q0 1
set s 1
sim
expect q1 1
`)); err != nil {
		log.Fatal(err)
	}

	th := sys.NewThread("Shifter-synthesis", "you")
	rec, err := sys.Invoke(th, "Structure_Synthesis",
		map[string]string{
			"Incell":       "/specs/shifter",
			"Musa_Command": "/specs/shifter.cmd",
		},
		map[string]string{
			"Outcell":         "shifter.layout",
			"Cell_Statistics": "shifter.stats",
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Completed task steps (completion order):")
	fmt.Println(render.ProgressFromRecord(rec))

	stats, err := sys.Store.Get(oct.Ref{Name: "shifter.stats"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(stats.Data.(oct.Text)))

	fmt.Println("Control stream:")
	fmt.Println(sys.RenderThread(th))
	fmt.Println(sys.RenderScope(th))

	// Metadata inferred from the history, not entered by anyone:
	layoutRef, err := th.ResolveInput("shifter.layout")
	if err != nil {
		log.Fatal(err)
	}
	typ, _ := sys.Inference.TypeOf(layoutRef)
	area, _ := sys.Inference.AttrOf(layoutRef, "area")
	fmt.Printf("inferred: %s is a %s object, area %s\n", layoutRef, typ, area)
	fmt.Printf("virtual time elapsed: %d ticks on %d workstations\n",
		sys.Cluster.Now(), sys.Cluster.NodeCount())
}
