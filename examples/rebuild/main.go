// Rebuild: the derivation-history payoff of §1.4 — "the UNIX Make
// facility requires the knowledge of the detailed tool execution
// sequence... to reconstruct the design object when one or more of its
// dependent objects are modified." Papyrus records that sequence
// automatically as a by-product of activity management; this example
// modifies a source specification and reconstructs exactly the stale
// derived object, contrasting with the VOV baseline's
// regenerate-everything retracing.
package main

import (
	"fmt"
	"log"

	"papyrus/internal/baseline"
	"papyrus/internal/cad"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
)

func main() {
	sys, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	_, err = sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)))
	must(err)
	th := sys.NewThread("demo", "u")
	_, err = sys.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/spec"},
		map[string]string{"Outlogic": "sh.logic"})
	must(err)
	_, err = sys.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla"})
	must(err)

	target, err := th.ResolveInput("sh.pla")
	must(err)
	stale, err := sys.OutOfDate(target)
	must(err)
	fmt.Printf("after the flow: %s out of date? %v\n", target, stale)

	// The designer edits the specification: a wider shifter.
	_, err = sys.ImportObject("/spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
	must(err)
	stale, err = sys.OutOfDate(target)
	must(err)
	fmt.Printf("after editing /spec: %s out of date? %v\n", target, stale)

	fresh, err := sys.Rebuild(target)
	must(err)
	fmt.Printf("rebuilt: %s -> %s (old version untouched — single assignment)\n", target, fresh)
	obj, err := sys.Store.Get(fresh)
	must(err)
	fmt.Printf("regenerated object type: %s, size %d bytes\n", obj.Type, obj.Data.Size())

	// Contrast with VOV-style retracing: everything downstream re-runs.
	suite := cad.NewSuite()
	store := oct.NewStore()
	vov := baseline.NewVOV(suite, store)
	spec, _ := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(3)), "d")
	vov.Checkin("spec", spec)
	must(vov.Run("bdsyn", nil, []string{"spec"}, []string{"net"}))
	must(vov.Run("misII", nil, []string{"net"}, []string{"opt"}))
	must(vov.Run("espresso", nil, []string{"net"}, []string{"min"}))
	spec2, _ := store.Put("spec", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)), "d")
	reruns, err := vov.Modify("spec", spec2)
	must(err)
	fmt.Printf("\nVOV baseline on the same edit: %d tool re-runs (all derived objects)\n", reruns)
	fmt.Println("Papyrus rebuilt only the one object asked for (demand-driven).")
}
