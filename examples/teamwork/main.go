// Teamwork: cooperative design with synchronization data spaces, thread
// import, and the ALU thread join of dissertation Figs 3.10/3.11. Randy
// builds a shifter, Mary an arithmetic unit; they share cells through SDS
// "A" with predicate-filtered change notification; Randy imports Mary's
// thread for read-only monitoring; finally the two threads join into the
// ALU thread.
package main

import (
	"fmt"
	"log"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
	"papyrus/internal/sds"
)

func main() {
	sys, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	_, err = sys.ImportObject("/specs/shifter", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
	must(err)
	_, err = sys.ImportObject("/specs/adder", oct.TypeBehavioral, oct.Text(logic.AdderBehavior(2)))
	must(err)

	randy := sys.NewThread("Shifter", "randy")
	mary := sys.NewThread("Arithmetic-unit", "mary")

	_, err = sys.Invoke(randy, "create-logic-description",
		map[string]string{"Spec": "/specs/shifter"},
		map[string]string{"Outlogic": "shifter.logic"})
	must(err)
	_, err = sys.Invoke(mary, "create-logic-description",
		map[string]string{"Spec": "/specs/adder"},
		map[string]string{"Outlogic": "adder.logic"})
	must(err)

	// --- Sharing through a synchronization data space (Fig 3.11) ------
	spaceA := sys.Space("A")
	spaceA.Register(randy.ID())
	spaceA.Register(mary.ID())

	// Randy publishes his shifter logic.
	_, err = sys.Activity.MoveToSDS(randy, "shifter.logic", spaceA)
	must(err)

	// Mary retrieves it, leaving a notification flag that only fires when
	// a SMALLER (optimized) version arrives.
	smaller := func(prev, next *oct.Object) bool {
		return prev == nil || next.Data.Size() < prev.Data.Size()
	}
	_, err = sys.Activity.MoveFromSDS(spaceA, "shifter.logic", 0, mary, "marys.shifter", true, sds.Predicate(smaller))
	must(err)
	fmt.Println("mary retrieved shifter.logic from SDS A with a notification flag")

	// Randy publishes a new contribution of the same cell; the predicate
	// decides whether Mary hears about it.
	_, err = sys.Activity.MoveToSDS(randy, "shifter.logic", spaceA)
	must(err)
	for _, n := range mary.Notifications() {
		fmt.Printf("notification to thread %q: %s\n", "Arithmetic-unit", n.Text)
	}

	// --- Read-only thread import (§3.3.4.2) ---------------------------
	must(randy.Import(mary))
	scope, err := randy.ImportedScope(mary)
	must(err)
	fmt.Printf("randy monitors mary's thread: %d objects in her scope\n", len(scope))

	// --- The ALU join (Fig 3.10) --------------------------------------
	alu, err := sys.Activity.Join(randy, mary,
		randy.Frontier()[0], mary.Frontier()[0], "ALU", "randy")
	must(err)
	fmt.Println("\nALU thread after the join:")
	fmt.Println(sys.RenderThread(alu))

	// The joined workspace sees both sides; continue development there.
	_, err = sys.Invoke(alu, "standard-cell-place-and-route",
		map[string]string{"Inlogic": "adder.logic"},
		map[string]string{"Outcell": "alu.adder.cell"})
	must(err)
	fmt.Println("continued development on the joined thread:")
	fmt.Println(sys.RenderScope(alu))
}
