// Inference: the Chapter 6 demonstration. Run a design flow while the
// metadata-inference engine watches the history; then query what the
// system deduced without anyone entering metadata: object types, inherited
// vs measured attributes (the espresso TSD of Fig 6.4), inter-object
// relationships, derivation recipes, and propagated attributes evaluated
// through configuration relationships (Fig 6.5).
package main

import (
	"fmt"
	"log"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/infer"
	"papyrus/internal/oct"
)

func main() {
	sys, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	_, err = sys.ImportObject("/specs/shifter", oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4)))
	must(err)
	th := sys.NewThread("demo", "u")
	_, err = sys.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/specs/shifter"},
		map[string]string{"Outlogic": "sh.logic"})
	must(err)
	recPLA, err := sys.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "sh.logic"},
		map[string]string{"Outcell": "sh.pla"})
	must(err)
	_, err = sys.Invoke(th, "place-pads",
		map[string]string{"Incell": "sh.pla"},
		map[string]string{"Outcell": "sh.padded"})
	must(err)

	eng := sys.Inference

	fmt.Println("== types inferred from creating tools (no user declarations) ==")
	for _, step := range recPLA.Steps {
		for _, out := range step.Outputs {
			typ, _ := eng.TypeOf(out)
			fmt.Printf("  %-22s -> %-8s (created by %s)\n", out, typ, step.Tool)
		}
	}

	fmt.Println("\n== attributes: inherited vs measured (Fig 6.4) ==")
	var espOut oct.Ref
	for _, step := range recPLA.Steps {
		if step.Tool == "espresso" && len(step.Outputs) > 0 {
			espOut = step.Outputs[0]
		}
	}
	for _, a := range []string{"inputs", "outputs", "minterms", "area"} {
		v, err := eng.AttrOf(espOut, a)
		src := "measured lazily"
		if e, ok := sys.Attrs.Peek(espOut, a); ok && e.Source == "inherited" {
			src = "inherited through the espresso TSD"
		}
		if err != nil {
			fmt.Printf("  %-10s (not measurable on this type: %v)\n", a, err)
			continue
		}
		fmt.Printf("  %-10s = %-6s  [%s]\n", a, v, src)
	}

	fmt.Println("\n== relationships established from the history (§6.4.2) ==")
	padded, err := th.ResolveInput("sh.padded")
	must(err)
	for _, r := range eng.Relationships(padded) {
		fmt.Printf("  %-14s %s -> %s (via %s)\n", r.Kind, r.From, r.To, r.Via)
	}
	comps := eng.RelatedBy(infer.RelConfiguration, padded)
	fmt.Printf("  configuration components of %s: %v\n", padded, comps)

	fmt.Println("\n== derivation recipe from the ADG (rebuild knowledge) ==")
	order, err := eng.Graph().Derivation(padded)
	must(err)
	for i, op := range order {
		fmt.Printf("  %d. %s %v\n", i+1, op.Tool, op.Options)
	}

	fmt.Println("\n== type checking from inferred types (§6.4.1) ==")
	logicRef, _ := th.ResolveInput("sh.logic")
	if err := eng.CheckApplicable("sparcs", []oct.Ref{logicRef}); err != nil {
		fmt.Printf("  rejected as expected: %v\n", err)
	}

	fmt.Println("\n== propagated attributes through configuration (Fig 6.5) ==")
	power, err := eng.PropagatedAttr(padded, "power")
	must(err)
	fmt.Printf("  power of %s aggregated from components: %s uW\n", padded, power)
}
