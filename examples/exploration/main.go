// Exploration: the dissertation's Fig 3.7 scenario. A designer synthesizes
// a shifter with the standard-cell approach, is unsatisfied, reworks the
// thread back to design point 3, and explores a PLA implementation — the
// system maintains both alternatives as control-stream branches and maps
// each to its own subset of design objects.
package main

import (
	"fmt"
	"log"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
)

func main() {
	sys, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	_, err = sys.ImportObject("/specs/shifter", oct.TypeBehavioral,
		oct.Text(logic.ShifterBehavior(4)))
	must(err)
	_, err = sys.ImportObject("/specs/shifter.cmd", oct.TypeText,
		oct.Text("set d0 1\nsim\nexpect q0 1\n"))
	must(err)

	th := sys.NewThread("Shifter-synthesis", "chiueh")

	// Design points 1 and 2: create the logic description, simulate it.
	_, err = sys.Invoke(th, "create-logic-description",
		map[string]string{"Spec": "/specs/shifter"},
		map[string]string{"Outlogic": "shifter.logic"})
	must(err)
	_, err = sys.Invoke(th, "logic-simulator",
		map[string]string{"Inlogic": "shifter.logic", "Commands": "/specs/shifter.cmd"},
		map[string]string{"Report": "shifter.simreport"})
	must(err)
	simPoint := th.Cursor() // design point 3 of the figure

	// Design points 4-5: the standard-cell approach.
	_, err = sys.Invoke(th, "standard-cell-place-and-route",
		map[string]string{"Inlogic": "shifter.logic"},
		map[string]string{"Outcell": "shifter.sc"})
	must(err)
	_, err = sys.Invoke(th, "place-pads",
		map[string]string{"Incell": "shifter.sc"},
		map[string]string{"Outcell": "shifter.sc.padded"})
	must(err)
	scArea, _ := sys.Inference.AttrOf(mustResolve(th.ResolveInput("shifter.sc.padded")), "area")
	fmt.Printf("standard-cell approach: die area %s\n", scArea)

	// "Suppose the designer was not satisfied with the result of the
	// standard-cell approach": rework to design point 3.
	must(th.MoveCursor(simPoint))
	must(th.Annotate(simPoint, "The Start of PLA Approach"))

	// The PLA alternative: espresso -> pleasure -> panda, then pads.
	_, err = sys.Invoke(th, "PLA-generation",
		map[string]string{"Inlogic": "shifter.logic"},
		map[string]string{"Outcell": "shifter.pla"})
	must(err)
	_, err = sys.Invoke(th, "place-pads",
		map[string]string{"Incell": "shifter.pla"},
		map[string]string{"Outcell": "shifter.pla.padded"})
	must(err)
	plaArea, _ := sys.Inference.AttrOf(mustResolve(th.ResolveInput("shifter.pla.padded")), "area")
	fmt.Printf("PLA approach:           die area %s\n", plaArea)

	fmt.Println("\nControl stream after exploring both alternatives:")
	fmt.Println(sys.RenderThread(th))

	// The visibility rule keeps the alternatives separate: in the PLA
	// branch the standard-cell layout is out of scope.
	if _, err := th.ResolveInput("shifter.sc.padded"); err == nil {
		log.Fatal("branches are not isolated!")
	}
	fmt.Println("branch isolation verified: shifter.sc.padded is invisible in the PLA branch")

	// Random access by annotation (Fig 5.5).
	if rec, ok := th.FindAnnotation("The Start of PLA Approach"); ok {
		fmt.Printf("annotation lookup: record %d (%s)\n", rec.ID, rec.TaskName)
	}
}

func mustResolve(ref oct.Ref, err error) oct.Ref {
	if err != nil {
		log.Fatal(err)
	}
	return ref
}
