// Cluster: distributed task execution on the simulated Sprite network
// (dissertation §4.3.2–§4.3.3). Runs the Mosaico macro-cell pipeline
// (Fig 4.3) and a parallelism-rich synthetic task on 1, 2, 4 and 8
// workstations, showing the speedup shapes: Mosaico is a near-linear
// pipeline and barely speeds up, while independent work scales until the
// critical path binds. Also demonstrates owner-return eviction plus
// re-migration.
package main

import (
	"fmt"
	"log"

	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/oct"
)

// fanoutTemplate synthesizes four independent modules in one task.
const fanoutTemplate = `task Fanout4 {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {misII -o O1 A}
step S2 {B} {O2} {misII -o O2 B}
step S3 {C} {O3} {misII -o O3 C}
step S4 {D} {O4} {misII -o O4 D}
`

func elapsed(nodes int, taskName string, inputs map[string]string, outputs map[string]string, seedFn func(*core.System) error) int64 {
	sys, err := core.New(core.Config{
		Nodes:          nodes,
		ReMigrateEvery: 20,
		ExtraTemplates: map[string]string{"Fanout4": fanoutTemplate},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := seedFn(sys); err != nil {
		log.Fatal(err)
	}
	th := sys.NewThread("bench", "u")
	if _, err := sys.Invoke(th, taskName, inputs, outputs); err != nil {
		log.Fatal(err)
	}
	return sys.Cluster.Now()
}

func main() {
	seedFanout := func(sys *core.System) error {
		for _, n := range []string{"a", "b", "c", "d"} {
			if _, err := sys.ImportObject("/"+n, oct.TypeBehavioral,
				oct.Text(logic.ShifterBehavior(4))); err != nil {
				return err
			}
		}
		return nil
	}
	seedMosaico := func(sys *core.System) error {
		_, err := sys.ImportObject("/macro", oct.TypeBehavioral,
			oct.Text(logic.GenBehavior(logic.GenConfig{Seed: 7, Inputs: 6, Outputs: 4, Depth: 4})))
		return err
	}

	fmt.Println("workstations | Fanout4 (parallel) | Mosaico (pipeline)")
	var base1, baseM int64
	for _, n := range []int{1, 2, 4, 8} {
		tf := elapsed(n, "Fanout4",
			map[string]string{"A": "/a", "B": "/b", "C": "/c", "D": "/d"},
			map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"},
			seedFanout)
		tm := elapsed(n, "Mosaico",
			map[string]string{"Incell": "/macro"},
			map[string]string{"Outcell": "m.out", "Cell_statistics": "m.stats"},
			seedMosaico)
		if n == 1 {
			base1, baseM = tf, tm
		}
		fmt.Printf("%12d | %8d (%.2fx) | %8d (%.2fx)\n",
			n, tf, float64(base1)/float64(tf), tm, float64(baseM)/float64(tm))
	}
	fmt.Println("\nshape check: the fan-out task approaches 4x on 4+ nodes; the")
	fmt.Println("Mosaico pipeline stays near 1x — parallelism extraction finds")
	fmt.Println("only what the data dependencies allow (§4.3.2).")
}
