package papyrus

// The memoization determinism matrix (docs/CACHING.md, EXPERIMENTS.md
// E12). Two contracts, each checked at worker counts {1, 4, 16}:
//
//  1. Cold workload (multi-session fan-out, fresh cache, disjoint input
//     namespaces -> every step misses): the memo-filtered stats export,
//     the merged trace, and the store version map must be byte-identical
//     with the cache on and off — keying and populating are pure
//     observers of a miss-only run.
//
//  2. Replay workload (fan-out + intermediate chain, cursor move, redo):
//     the version map must be byte-identical with the cache on and off —
//     serving a hit may only change how fast the store reaches a state,
//     never which state — and within each memo setting the full
//     unfiltered exports must be worker-count invariant.
//
// TestMemoCrashRecovery closes the durability loop: a WAL-armed memoized
// run is abandoned without Close, Recover rebuilds a *fresh* cache from
// the recovered history (core.WarmMemo), and the post-crash redo is
// all hits with a store identical to the memo-off reference.
// CI runs this file under -race -count=2 (.github/workflows/ci.yml).

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"papyrus/internal/activity"
	"papyrus/internal/cad/logic"
	"papyrus/internal/core"
	"papyrus/internal/history"
	"papyrus/internal/memo"
	"papyrus/internal/obs"
	"papyrus/internal/oct"
)

const memoFanoutTpl = `task Fanout4 {A B C D} {O1 O2 O3 O4}
step S1 {A} {O1} {misII -o O1 A}
step S2 {B} {O2} {misII -o O2 B}
step S3 {C} {O3} {misII -o O3 C}
step S4 {D} {O4} {misII -o O4 D}
`

// memoChainTpl threads two intermediates, so replay hits depend on
// instance-suffix normalization and content-addressed version tokens.
const memoChainTpl = `task MemoChain {A} {Out}
step {1 Build} {A} {m1} {bdsyn -o m1 A}
step {2 Optimize} {m1} {m2} {misII -o m2 m1}
step {3 Finish} {m2} {Out} {misII -o Out m2}
`

// filteredStats renders the registry without the memo.* namespace — the
// only export permitted to differ between memo-on and memo-off runs of
// an all-miss workload.
func filteredStats(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WriteTextFiltered(&b, func(name string) bool {
		return !strings.HasPrefix(name, "memo.")
	}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// runMemoColdCell executes 6 disjoint fan-out sessions and returns the
// deterministic exports (filtered stats, version map, merged trace).
// backend selects the store's version index ("" = default map).
func runMemoColdCell(t *testing.T, workers int, withMemo bool, backend string) (stats, versions, trace string) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	cfg := core.Config{
		Workers:          workers,
		DisableInference: true,
		Metrics:          reg,
		Trace:            tracer,
		StoreBackend:     backend,
		ExtraTemplates:   map[string]string{"Fanout4": memoFanoutTpl},
	}
	if withMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 6
	specs := make([]core.SessionSpec, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		specs[i] = core.SessionSpec{
			Name: fmt.Sprintf("designer%d", i),
			Run: func(s *core.Session) error {
				inputs := map[string]string{}
				for _, formal := range []string{"A", "B", "C", "D"} {
					name := fmt.Sprintf("/s%d/%s", i, formal)
					if _, err := sys.ImportObject(name, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
						return err
					}
					inputs[formal] = name
				}
				outputs := map[string]string{}
				for j := 1; j <= 4; j++ {
					outputs[fmt.Sprintf("O%d", j)] = fmt.Sprintf("/s%d/out%d", i, j)
				}
				th := s.Activity.NewThread(s.Name, "test")
				_, err := s.Invoke(th, "Fanout4", inputs, outputs)
				return err
			},
		}
	}
	if _, err := sys.RunSessions(specs); err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := tracer.WriteChromeTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if withMemo {
		// Sanity: the workload really was all-miss with every step cached.
		if got := reg.Counter("memo.hit"); got != 0 {
			t.Fatalf("cold cell workers=%d: %d unexpected hits", workers, got)
		}
		if got := reg.Counter("memo.miss"); got != 4*sessions {
			t.Fatalf("cold cell workers=%d: memo.miss = %d, want %d", workers, got, 4*sessions)
		}
		if got := cfg.Memo.Len(); got != 4*sessions {
			t.Fatalf("cold cell workers=%d: cache holds %d entries, want %d", workers, got, 4*sessions)
		}
	}
	return filteredStats(t, reg), sys.Store.VersionMapText(), traceBuf.String()
}

func TestMemoMatrixColdRunInvariant(t *testing.T) {
	baseStats, baseVersions, baseTrace := runMemoColdCell(t, 1, false, "")
	for _, workers := range []int{1, 4, 16} {
		for _, withMemo := range []bool{false, true} {
			if workers == 1 && !withMemo {
				continue
			}
			stats, versions, trace := runMemoColdCell(t, workers, withMemo, "")
			if stats != baseStats {
				t.Errorf("workers=%d memo=%v: filtered stats diverge:\n%s\nvs\n%s", workers, withMemo, stats, baseStats)
			}
			if versions != baseVersions {
				t.Errorf("workers=%d memo=%v: version map diverges:\n%s\nvs\n%s", workers, withMemo, versions, baseVersions)
			}
			if trace != baseTrace {
				t.Errorf("workers=%d memo=%v: merged trace diverges", workers, withMemo)
			}
		}
	}
	// Backend dimension: the indexed version stores are pure observers of
	// the same contract — every export byte-identical to the map-backed
	// reference cell (docs/STORAGE.md).
	for _, backend := range oct.Backends() {
		stats, versions, trace := runMemoColdCell(t, 4, true, string(backend))
		if stats != baseStats {
			t.Errorf("backend %s: filtered stats diverge from the map reference", backend)
		}
		if versions != baseVersions {
			t.Errorf("backend %s: version map diverges:\n%s\nvs\n%s", backend, versions, baseVersions)
		}
		if trace != baseTrace {
			t.Errorf("backend %s: merged trace diverges", backend)
		}
	}
}

// replayWorkload runs Fanout4 plus the intermediate chain in one thread,
// moves the cursor back to the initial state, and redoes both records.
// Returns the system and the full (unfiltered) stats export.
func replayWorkload(t *testing.T, workers int, withMemo bool, backend string) (*core.System, string) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := core.Config{
		Nodes: 4, Workers: workers, DisableInference: true, Metrics: reg,
		StoreBackend:   backend,
		ExtraTemplates: map[string]string{"Fanout4": memoFanoutTpl, "MemoChain": memoChainTpl},
	}
	if withMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	th, recs := seedAndRunReplayThread(t, sys)
	if err := th.MoveCursor(nil); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := sys.Activity.ReplayRecord(th, rec); err != nil {
			t.Fatal(err)
		}
	}
	if withMemo {
		if hits := reg.Counter("memo.hit"); hits != 7 {
			t.Fatalf("workers=%d: redo produced %d hits, want 7 (all steps)", workers, hits)
		}
	}
	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return sys, b.String()
}

// seedAndRunReplayThread imports the shared inputs and runs both replay
// tasks once, returning the thread and its two records.
func seedAndRunReplayThread(t *testing.T, sys *core.System) (*activity.Thread, []*history.Record) {
	t.Helper()
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, err := sys.ImportObject("/replay/"+n, oct.TypeBehavioral, oct.Text(logic.ShifterBehavior(4))); err != nil {
			t.Fatal(err)
		}
	}
	th := sys.NewThread("replay", "test")
	recFan, err := sys.Invoke(th, "Fanout4",
		map[string]string{"A": "/replay/a", "B": "/replay/b", "C": "/replay/c", "D": "/replay/d"},
		map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"})
	if err != nil {
		t.Fatal(err)
	}
	recChain, err := sys.Invoke(th, "MemoChain",
		map[string]string{"A": "/replay/a"}, map[string]string{"Out": "chain.out"})
	if err != nil {
		t.Fatal(err)
	}
	return th, []*history.Record{recFan, recChain}
}

func TestMemoMatrixReplayInvariant(t *testing.T) {
	var wantVersions string
	for _, withMemo := range []bool{false, true} {
		var wantStats string
		for _, workers := range []int{1, 4, 16} {
			sys, stats := replayWorkload(t, workers, withMemo, "")
			versions := sys.Store.VersionMapText()
			// The version map is the cross-setting contract: hit-served
			// replay must land the store in the byte-identical state.
			if wantVersions == "" {
				wantVersions = versions
			} else if versions != wantVersions {
				t.Errorf("workers=%d memo=%v: version map diverges:\n%s\nvs\n%s",
					workers, withMemo, versions, wantVersions)
			}
			// Full exports are only comparable within a memo setting (the
			// hit path legitimately skips sprite issue), but there they
			// must be worker-count invariant.
			if wantStats == "" {
				wantStats = stats
			} else if stats != wantStats {
				t.Errorf("workers=%d memo=%v: stats diverge across worker counts:\n%s\nvs\n%s",
					workers, withMemo, stats, wantStats)
			}
		}
	}
	// Backend dimension on one memoized cell: a hit-served redo must land
	// the btree- and lsm-indexed stores in the identical state.
	for _, backend := range oct.Backends() {
		sys, _ := replayWorkload(t, 4, true, string(backend))
		if versions := sys.Store.VersionMapText(); versions != wantVersions {
			t.Errorf("backend %s: replay version map diverges:\n%s\nvs\n%s", backend, versions, wantVersions)
		}
	}
}

// reclaimRedo seeds the replay workload, erases the whole thread back to
// its initial point, sweeps the hidden versions away with the reclaimer,
// and then re-invokes both tasks. With the cache armed, the sweep must
// invalidate every entry keyed by a reclaimed version — the redo may not
// serve a single hit whose outputs no longer exist — and the final store
// must be byte-identical to the memo-off flow.
func reclaimRedo(t *testing.T, workers int, withMemo bool, backend string) string {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := core.Config{
		Nodes: 4, Workers: workers, DisableInference: true, Metrics: reg,
		StoreBackend:   backend,
		ExtraTemplates: map[string]string{"Fanout4": memoFanoutTpl, "MemoChain": memoChainTpl},
	}
	if withMemo {
		cfg.Memo = memo.NewCache()
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := seedAndRunReplayThread(t, sys)
	if withMemo && cfg.Memo.Len() != 7 {
		t.Fatalf("workers=%d: cache holds %d entries after seeding, want 7", workers, cfg.Memo.Len())
	}
	if _, err := th.MoveCursorErasing(nil); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Reclaimer.Sweep(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions == 0 {
		t.Fatalf("workers=%d: sweep reclaimed nothing — the erase hid no versions", workers)
	}
	if withMemo {
		if got := cfg.Memo.Len(); got != 0 {
			t.Errorf("workers=%d: %d cache entries survived the sweep (invalidated %d)",
				workers, got, st.MemoInvalidated)
		}
	} else if st.MemoInvalidated != 0 {
		t.Errorf("workers=%d: memo-off sweep reported %d invalidations", workers, st.MemoInvalidated)
	}
	// Redo with fresh invocations: stale entries would hit here (the keys
	// only cover inputs, which are untouched) and resurrect output refs
	// the sweep just deleted.
	if _, err := sys.Invoke(th, "Fanout4",
		map[string]string{"A": "/replay/a", "B": "/replay/b", "C": "/replay/c", "D": "/replay/d"},
		map[string]string{"O1": "o1", "O2": "o2", "O3": "o3", "O4": "o4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Invoke(th, "MemoChain",
		map[string]string{"A": "/replay/a"}, map[string]string{"Out": "chain.out"}); err != nil {
		t.Fatal(err)
	}
	if withMemo {
		if hits := reg.Counter("memo.hit"); hits != 0 {
			t.Errorf("workers=%d: post-reclaim redo served %d stale hits", workers, hits)
		}
		if misses := reg.Counter("memo.miss"); misses != 14 {
			t.Errorf("workers=%d: memo.miss = %d, want 14 (7 seed + 7 redo)", workers, misses)
		}
	}
	return sys.Store.VersionMapText()
}

// TestMemoReclaimCoherence is the reclaim dimension of the memo matrix:
// physically reclaiming versions must invalidate every cache entry keyed
// by them, so a redo over reclaimed ground re-executes instead of serving
// hits that reference deleted versions (docs/RECLAIM.md). Checked at two
// worker counts and across every version-index backend.
func TestMemoReclaimCoherence(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		for _, withMemo := range []bool{false, true} {
			got := reclaimRedo(t, workers, withMemo, "")
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("workers=%d memo=%v: version map diverges:\n--- want ---\n%s--- got ---\n%s",
					workers, withMemo, want, got)
			}
		}
	}
	for _, backend := range oct.Backends() {
		if got := reclaimRedo(t, 4, true, string(backend)); got != want {
			t.Errorf("backend %s: version map diverges:\n--- want ---\n%s--- got ---\n%s", backend, want, got)
		}
	}
}

// crashRedo runs the replay workload under write-ahead logging, abandons
// the system without Close (the crash — any populated cache dies with the
// process), recovers with the same config shape, moves the cursor back,
// redoes every task record, and returns the final store map and system.
func crashRedo(t *testing.T, withMemo bool, backend string) (string, *core.System) {
	t.Helper()
	walDir := t.TempDir()
	mkConfig := func() core.Config {
		cfg := core.Config{
			Nodes: 4, DisableInference: true,
			Metrics:        obs.NewRegistry(),
			StoreBackend:   backend,
			ExtraTemplates: map[string]string{"Fanout4": memoFanoutTpl, "MemoChain": memoChainTpl},
			Durability:     &core.DurabilityConfig{Dir: walDir, FsyncEvery: 1},
		}
		if withMemo {
			cfg.Memo = memo.NewCache()
		}
		return cfg
	}
	crashed, err := core.New(mkConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedAndRunReplayThread(t, crashed)
	// Crash: no Close; the log keeps its open tail and the cache is lost.

	sys, _, err := core.Recover(mkConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	})
	threads := sys.Activity.Threads()
	if len(threads) != 1 {
		t.Fatalf("recovered %d threads, want 1", len(threads))
	}
	th := threads[0]
	if err := th.MoveCursor(nil); err != nil {
		t.Fatal(err)
	}
	for _, rec := range th.SortedRecords() {
		if len(rec.Steps) == 0 {
			continue // import records have nothing to replay
		}
		if _, err := sys.Activity.ReplayRecord(th, rec); err != nil {
			t.Fatal(err)
		}
	}
	return sys.Store.VersionMapText(), sys
}

// TestMemoCrashRecovery: crash after a memoized WAL-armed run (no Close),
// recover with a fresh cache, and verify WarmMemo makes the post-crash
// redo all-hits with a store byte-identical to the memo-off flow through
// the identical crash-and-recover path. Runs once per version-index
// backend: the crash path must not depend on the store's index.
func TestMemoCrashRecovery(t *testing.T) {
	for _, backend := range oct.Backends() {
		t.Run(string(backend), func(t *testing.T) {
			wantVersions, _ := crashRedo(t, false, string(backend))
			gotVersions, sys := crashRedo(t, true, string(backend))

			// Recovery rebuilt the fresh cache from the recovered history alone.
			if warmed := sys.Metrics.Counter("memo.warm"); warmed != 7 {
				t.Fatalf("memo.warm = %d, want 7 (4 fan-out + 3 chain steps)", warmed)
			}
			if hits := sys.Metrics.Counter("memo.hit"); hits != 7 {
				t.Errorf("post-crash redo produced %d hits, want 7", hits)
			}
			if misses := sys.Metrics.Counter("memo.miss"); misses != 0 {
				t.Errorf("post-crash redo produced %d misses, want 0", misses)
			}
			if gotVersions != wantVersions {
				t.Errorf("post-crash redo store differs from the memo-off reference:\n--- want ---\n%s--- got ---\n%s",
					wantVersions, gotVersions)
			}
		})
	}
}
