// Package papyrus is the root of the Papyrus reproduction — see README.md
// for the overview, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for the paper-vs-measured record. The benchmark harness for every table
// and figure lives in bench_test.go next to this file; the library proper
// is under internal/ and the runnable entry points under cmd/ and
// examples/.
package papyrus
