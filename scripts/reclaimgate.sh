#!/bin/sh
# Bounded-memory ratchet (the storage sibling of scripts/perfgate.sh):
# the E17 reclaim soak's worst sweep-enabled live-set-vs-total-written
# bytes ratio must stay at or under the ceiling recorded in
# scripts/reclaim_floor.txt. The soak itself hard-gates determinism —
# repeat-run identity, the sweep-on/off modulo-reclaimed version map,
# and full-log crash recovery across every store backend — and
# soft-gates the ratio ceiling plus first-half-peak vs second-half-peak
# non-growth (docs/RECLAIM.md, EXPERIMENTS.md E17).
#
# CI fails when the ratio regresses; when reclamation gets tighter, run
# `scripts/reclaimgate.sh -record` and commit the lowered ceiling.
# RCDEPTH overrides the soak depth (nightly runs 256; the default 128
# keeps both soak halves containing kept-chain rounds so the growth
# gate is meaningful).
set -eu
cd "$(dirname "$0")/.."

floor_file=scripts/reclaim_floor.txt
ratio_max=$(awk '$1 == "e17_live_ratio_max" {print $2}' "$floor_file")
if [ -z "$ratio_max" ]; then
	echo "reclaimgate: missing e17_live_ratio_max in $floor_file" >&2
	exit 2
fi

depth="${RCDEPTH:-128}"
out="${TMPDIR:-/tmp}/papyrus-reclaimgate.$$.out"
trap 'rm -f "$out"' EXIT

# -record measures without the ceiling so a currently-failing gate can
# still re-baseline; a normal run hands the ceiling to benchtool, which
# still flushes the table and summary before exiting non-zero.
gates="-rcmaxratio $ratio_max"
if [ "${1:-}" = "-record" ]; then
	gates=""
fi

status=0
# shellcheck disable=SC2086 # gates is a deliberate word list
go run ./cmd/benchtool -exp reclaim \
	-rcdepth "$depth" -rcgrowth 1.05 $gates \
	-rcout BENCH_reclaim.json \
	${GITHUB_STEP_SUMMARY:+-summary "$GITHUB_STEP_SUMMARY"} \
	>"$out" 2>&1 || status=$?
cat "$out"

ratio=$(awk '/^reclaim: max live\/written ratio = /{print $6}' "$out")
echo "reclaim gate: live/written ratio ${ratio:-?} (ceiling $ratio_max, depth $depth)"

if [ "$status" -ne 0 ]; then
	msg="reclaim gate failed (see BENCH_reclaim.json)"
	if [ -n "${GITHUB_ACTIONS:-}" ]; then
		echo "::error file=scripts/reclaim_floor.txt::$msg"
	fi
	echo "$msg" >&2
	exit "$status"
fi

if [ "${1:-}" = "-record" ]; then
	if [ -z "$ratio" ]; then
		echo "reclaimgate: no 'reclaim: max live/written ratio' line to record" >&2
		exit 2
	fi
	new_max=$(awk "BEGIN{printf \"%.4f\", $ratio * 1.15}")
	echo "e17_live_ratio_max $new_max" > "$floor_file"
	echo "recorded new live/written ratio ceiling: $new_max (measured $ratio + 15% headroom)"
fi
