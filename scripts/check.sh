#!/bin/sh
# Repository gate, equivalent to `make check`: vet, build, race-enabled
# tests, and gofmt cleanliness. Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi
echo "ok"
