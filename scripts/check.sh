#!/bin/sh
# Repository gate, equivalent to `make check`: vet, build, race-enabled
# tests (with the full vet suite re-run over test files), and gofmt
# cleanliness. Exits nonzero on the first failure. Under GitHub Actions
# (GITHUB_ACTIONS set) gofmt failures are emitted as per-file ::error
# annotations so they show up inline on the pull request.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -vet=all ./..."
go test -race -vet=all ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	if [ -n "${GITHUB_ACTIONS:-}" ]; then
		for f in $unformatted; do
			echo "::error file=$f::not gofmt-formatted; run: gofmt -w $f"
		done
	fi
	exit 1
fi
echo "ok"
