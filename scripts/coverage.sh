#!/bin/sh
# Coverage ratchet: total statement coverage must never drop below the
# floor recorded in scripts/coverage_floor.txt. CI fails when it does;
# when coverage improves, run `scripts/coverage.sh -record` and commit
# the raised floor. The test suite is deterministic (virtual time, seeded
# faults), so the total is stable across runs and platforms.
set -eu
cd "$(dirname "$0")/.."

profile="${TMPDIR:-/tmp}/papyrus-cover.$$.out"
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./... > /dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
floor=$(cat scripts/coverage_floor.txt)
echo "total statement coverage: ${total}% (floor: ${floor}%)"

if awk "BEGIN{exit !($total < $floor)}"; then
	msg="coverage ${total}% fell below the recorded floor of ${floor}%"
	if [ -n "${GITHUB_ACTIONS:-}" ]; then
		echo "::error file=scripts/coverage_floor.txt::$msg"
	fi
	echo "$msg" >&2
	exit 1
fi

if [ "${1:-}" = "-record" ]; then
	echo "$total" > scripts/coverage_floor.txt
	echo "recorded new floor: ${total}%"
fi
