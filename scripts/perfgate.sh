#!/bin/sh
# Perf ratchet (the performance sibling of scripts/coverage.sh): the E11
# scale run must keep its 8-worker speedup above the recorded floor and
# its allocations per step under the recorded ceiling, both stored in
# scripts/perf_floor.txt. CI fails when either regresses; when the hot
# path gets cheaper, run `scripts/perfgate.sh -record` and commit the
# lowered ceiling. Speedup is a wall-clock *ratio* and allocs/step is a
# runtime.MemStats delta, so both are stable enough to gate on shared
# runners where absolute steps/sec is not.
#
# Every run leaves pprof CPU + heap profiles and the scale table under
# $PERFDIR (default perf/); CI uploads them as artifacts, pass included.
set -eu
cd "$(dirname "$0")/.."

floor_file=scripts/perf_floor.txt
speedup_floor=$(awk '$1 == "e11_speedup_floor" {print $2}' "$floor_file")
alloc_max=$(awk '$1 == "e11_allocs_per_step_max" {print $2}' "$floor_file")
if [ -z "$speedup_floor" ] || [ -z "$alloc_max" ]; then
	echo "perfgate: missing keys in $floor_file" >&2
	exit 2
fi

perfdir="${PERFDIR:-perf}"
mkdir -p "$perfdir"
out="$perfdir/perfgate.out"

# -record measures without thresholds so a currently-failing gate can
# still re-baseline; a normal run hands both thresholds to benchtool,
# which flushes profiles and tables before exiting non-zero.
gates="-scalemin $speedup_floor -allocmax $alloc_max"
if [ "${1:-}" = "-record" ]; then
	gates=""
fi

status=0
# shellcheck disable=SC2086 # gates is a deliberate word list
go run ./cmd/benchtool -exp scale \
	-scalesessions 16 -scaleworkers 1,4,8 -scalelatency 2ms \
	-benchmem -scaleregress 0.75 $gates \
	-cpuprofile "$perfdir/cpu.pprof" -memprofile "$perfdir/mem.pprof" \
	-scaleout "$perfdir/scale.json" \
	${GITHUB_STEP_SUMMARY:+-summary "$GITHUB_STEP_SUMMARY"} \
	>"$out" 2>&1 || status=$?
cat "$out"

allocs=$(awk '/^perf: allocs\/step = /{print $4}' "$out")
echo "perf gate: allocs/step ${allocs:-?} (ceiling $alloc_max), speedup floor ${speedup_floor}x at 8 workers"

if [ "$status" -ne 0 ]; then
	msg="perf gate failed (see $out; profiles in $perfdir/)"
	if [ -n "${GITHUB_ACTIONS:-}" ]; then
		echo "::error file=scripts/perf_floor.txt::$msg"
	fi
	echo "$msg" >&2
	exit "$status"
fi

if [ "${1:-}" = "-record" ]; then
	if [ -z "$allocs" ]; then
		echo "perfgate: no 'perf: allocs/step' line to record" >&2
		exit 2
	fi
	new_max=$(awk "BEGIN{printf \"%d\", $allocs * 1.25 + 1}")
	{
		echo "e11_speedup_floor $speedup_floor"
		echo "e11_allocs_per_step_max $new_max"
	} > "$floor_file"
	echo "recorded new allocs/step ceiling: $new_max (measured $allocs + 25% headroom)"
fi
