#!/bin/sh
# Lint gate: staticcheck and govulncheck at pinned versions. Under GitHub
# Actions (GITHUB_ACTIONS set) the tools are installed with `go install`
# and findings are emitted as ::error annotations so they show up inline
# on the pull request, like check.sh's gofmt gate. Locally the gate uses
# the tools when they are already on PATH and skips them otherwise, so
# `make lint` never needs network access.
set -eu
cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

if [ -n "${GITHUB_ACTIONS:-}" ]; then
	echo "== go install staticcheck@$STATICCHECK_VERSION, govulncheck@$GOVULNCHECK_VERSION"
	go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
	go install "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"
	PATH="$(go env GOPATH)/bin:$PATH"
fi

status=0

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck ./..."
	out=$(staticcheck ./... 2>&1) || status=1
	if [ -n "$out" ]; then
		echo "$out"
		if [ -n "${GITHUB_ACTIONS:-}" ]; then
			# Findings print as "path/file.go:line:col: message"; re-emit
			# each as an inline annotation.
			echo "$out" | while IFS= read -r line; do
				case "$line" in
				*.go:*:*:*)
					loc=${line%%" "*}
					msg=${line#*": "}
					file=${loc%%:*}
					rest=${loc#"$file":}
					lineno=${rest%%:*}
					rest=${rest#"$lineno":}
					col=${rest%%:*}
					echo "::error file=$file,line=$lineno,col=$col::staticcheck: $msg"
					;;
				esac
			done
		fi
	fi
else
	echo "staticcheck not installed; skipping (CI installs $STATICCHECK_VERSION)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck ./..."
	if ! govulncheck ./...; then
		status=1
		if [ -n "${GITHUB_ACTIONS:-}" ]; then
			echo "::error::govulncheck reported known vulnerabilities (see the job log)"
		fi
	fi
else
	echo "govulncheck not installed; skipping (CI installs $GOVULNCHECK_VERSION)"
fi

if [ "$status" -eq 0 ]; then
	echo "ok"
fi
exit $status
